#include "core/timeunion_db.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>

#include <chrono>
#include <thread>

#include "lsm/key_format.h"
#include "util/memory_tracker.h"
#include "util/mmap_file.h"

namespace tu::core {

using compress::Sample;
using index::Label;
using index::Labels;
using index::TagMatcher;

namespace {

uint32_t RoundUpPow2(uint32_t n) {
  uint32_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Monotonic milliseconds for the error handler's resume-backoff clock.
int64_t SteadyNowMs() {
  return static_cast<int64_t>(obs::MonotonicUs() / 1000);
}

core::BgErrorScope ScopeForLsmWork(lsm::BgWorkKind kind) {
  switch (kind) {
    case lsm::BgWorkKind::kFlush: return BgErrorScope::kFlush;
    case lsm::BgWorkKind::kCompaction: return BgErrorScope::kCompaction;
    case lsm::BgWorkKind::kDrain: return BgErrorScope::kDeferredDrain;
  }
  return BgErrorScope::kFlush;
}

}  // namespace

Status DBOptions::Validate() const {
  if (samples_per_chunk == 0) {
    return Status::InvalidArgument(
        "DBOptions::samples_per_chunk must be greater than 0");
  }
  if (registry_shards == 0) {
    return Status::InvalidArgument(
        "DBOptions::registry_shards must be greater than 0");
  }
  if (append_lock_stripes == 0) {
    return Status::InvalidArgument(
        "DBOptions::append_lock_stripes must be greater than 0");
  }
  if (retention_ms < 0) {
    return Status::InvalidArgument("DBOptions::retention_ms must be >= 0");
  }
  if (scrub.enabled && backend == Backend::kLeveled) {
    return Status::InvalidArgument(
        "DBOptions::scrub requires the time-partitioned backend (the scrub "
        "walks the two-tier manifest)");
  }
  if (admission.enabled) {
    if (admission.hard_watermark < admission.soft_watermark) {
      return Status::InvalidArgument(
          "DBOptions::admission.hard_watermark must be >= "
          "admission.soft_watermark");
    }
    if (lsm.fast_storage_limit_bytes == 0) {
      return Status::InvalidArgument(
          "DBOptions::lsm.fast_storage_limit_bytes must be set when "
          "admission control is enabled");
    }
  }
  if (!lsm.rollup_granularities_ms.empty()) {
    if (backend == Backend::kLeveled) {
      return Status::InvalidArgument(
          "DBOptions::lsm.rollup_granularities_ms requires the "
          "time-partitioned backend (rollups live in its L2 partitions)");
    }
    const int64_t finest = lsm.rollup_granularities_ms.front();
    for (size_t i = 0; i < lsm.rollup_granularities_ms.size(); ++i) {
      const int64_t g = lsm.rollup_granularities_ms[i];
      if (g <= 0) {
        return Status::InvalidArgument(
            "DBOptions::lsm.rollup_granularities_ms entries must be > 0");
      }
      if (i > 0 && g <= lsm.rollup_granularities_ms[i - 1]) {
        return Status::InvalidArgument(
            "DBOptions::lsm.rollup_granularities_ms must be strictly "
            "ascending (no duplicates)");
      }
      if (g % finest != 0) {
        // Keeps the resolutions nested, so any step a coarse granularity
        // divides is also exactly representable at the finest one.
        return Status::InvalidArgument(
            "DBOptions::lsm.rollup_granularities_ms: each granularity must "
            "be a multiple of the finest");
      }
    }
  }
  return Status::OK();
}

TimeUnionDB::TimeUnionDB(DBOptions options)
    : options_(std::move(options)),
      metrics_(std::make_unique<obs::MetricsRegistry>(
          options_.metrics.event_trace_capacity)),
      error_handler_(options_.error_handler),
      append_locks_(std::max<uint32_t>(1, options_.append_lock_stripes)) {
  const uint32_t shards =
      RoundUpPow2(std::max<uint32_t>(1, options_.registry_shards));
  shard_mask_ = shards - 1;
  key_shards_ = std::make_unique<KeyShard[]>(shards);
  entry_shards_ = std::make_unique<EntryShard[]>(shards);
}

TimeUnionDB::~TimeUnionDB() {
  if (maintenance_) maintenance_->Stop();
  // Tear down the LSM before the WAL writer: its background flush workers
  // fire the on_flush hook, which appends flush marks through wal_. Member
  // destruction alone would run in reverse declaration order and free wal_
  // while those workers can still be draining.
  time_lsm_ = nullptr;
  leveled_lsm_ = nullptr;
  lsm_.reset();
  wal_.reset();
  MemoryTracker::Global().Sub(MemCategory::kTags, registry_bytes_);
}

Status TimeUnionDB::Open(DBOptions options, std::unique_ptr<TimeUnionDB>* db) {
  TU_RETURN_IF_ERROR(options.Validate());
  std::unique_ptr<TimeUnionDB> result(new TimeUnionDB(std::move(options)));
  TU_RETURN_IF_ERROR(result->Init());
  *db = std::move(result);
  return Status::OK();
}

Status TimeUnionDB::Init() {
  if (options_.metrics.enabled) {
    // Record breaker transitions into the event trace. Installed before the
    // env is built so the breaker never sees a half-wired callback; the
    // registry is declared before env_ and therefore outlives it.
    if (!options_.env_options.slow_sim.breaker.on_transition) {
      obs::EventTrace* trace = &metrics_->trace();
      options_.env_options.slow_sim.breaker.on_transition =
          [trace](cloud::BreakerState from, cloud::BreakerState to) {
            trace->Record("breaker",
                          std::string(cloud::BreakerStateName(from)) + "->" +
                              cloud::BreakerStateName(to));
          };
    }
    h_ingest_append_ = metrics_->histogram("ingest.append_us");
    h_group_append_ = metrics_->histogram("ingest.group_append_us");
    h_wal_append_ = metrics_->histogram("wal.append_us");
    h_chunk_flush_ = metrics_->histogram("flush.chunk_us");
    h_query_e2e_ = metrics_->histogram("query.e2e_us");
    h_query_setup_ = metrics_->histogram("query.setup_us");
    sample_cells_ = std::make_unique<StripeCell[]>(append_locks_.stripes());
    c_rows_ = metrics_->counter("ingest.rows");
    c_wal_appends_ = metrics_->counter("wal.appends");
    c_chunk_flushes_ = metrics_->counter("flush.chunks");
  }
  env_ = std::make_unique<cloud::TieredEnv>(options_.workspace,
                                            options_.env_options);
  if (options_.metrics.enabled) {
    // Slow-tier op latency as charged by the cost model, attributed per op.
    env_->slow().set_op_latency_histograms(metrics_->histogram("slow.put_us"),
                                           metrics_->histogram("slow.get_us"));
  }
  // block_cache_bytes == 0 disables caching outright (readers tolerate a
  // null cache) instead of running a sharded cache that evicts every block.
  if (options_.block_cache_bytes > 0) {
    block_cache_ =
        std::make_unique<lsm::BlockCache>(options_.block_cache_bytes);
  }

  // Mmap-backed structures are working storage; recovery rebuilds them from
  // the WAL, so a fresh open starts them clean.
  const std::string mmap_dir = env_->mmap_dir();
  TU_RETURN_IF_ERROR(RemoveDirRecursive(mmap_dir));
  TU_RETURN_IF_ERROR(EnsureDir(mmap_dir));

  index_ = std::make_unique<index::InvertedIndex>(mmap_dir, "index",
                                                  options_.trie);
  TU_RETURN_IF_ERROR(index_->Init());
  tag_store_ = std::make_unique<index::TagStore>(mmap_dir, "tags");
  series_chunks_ = std::make_unique<mem::ChunkArray>(
      mmap_dir, "series_chunks", options_.series_chunk_bytes);
  group_ts_chunks_ = std::make_unique<mem::ChunkArray>(
      mmap_dir, "group_ts_chunks", options_.group_ts_chunk_bytes);
  group_val_chunks_ = std::make_unique<mem::ChunkArray>(
      mmap_dir, "group_val_chunks", options_.group_val_chunk_bytes);

  if (options_.backend == DBOptions::Backend::kLeveled) {
    // TU-LDB baseline: TimeUnion data model over a classic leveled LSM
    // (first two levels fast, deeper levels slow). WAL unsupported here.
    lsm::LeveledLsmOptions leveled_options = options_.leveled;
    if (options_.metrics.enabled) leveled_options.metrics = metrics_.get();
    auto leveled = std::make_unique<lsm::LeveledLsm>(
        env_.get(), "lsm", leveled_options, block_cache_.get());
    leveled_lsm_ = leveled.get();
    lsm_ = std::move(leveled);
    TU_RETURN_IF_ERROR(lsm_->Open());
    return StartMaintenance();
  }

  lsm::TimeLsmOptions lsm_options = options_.lsm;
  if (options_.metrics.enabled) lsm_options.metrics = metrics_.get();
  {
    // Every background error the LSM swallows feeds the DB's error-handler
    // state machine (classification, quiesce, auto-resume). A
    // caller-provided callback still runs afterwards.
    auto user_cb = lsm_options.on_background_error;
    lsm_options.on_background_error = [this, user_cb](lsm::BgWorkKind kind,
                                                      const Status& s) {
      error_handler_.OnBackgroundError(ScopeForLsmWork(kind), s,
                                       SteadyNowMs());
      if (user_cb) user_cb(kind, s);
    };
  }
  if (options_.enable_wal) {
    lsm_options.persist_manifest = true;
    lsm_options.on_flush = [this](const Slice& user_key, const Slice& value) {
      // §3.3: when a KV reaches level 0, log a flush mark with the chunk's
      // embedded sequence id so earlier WAL records become purgeable.
      uint64_t chunk_seq = 0;
      Slice payload = lsm::ChunkValuePayload(value);
      if (GetVarint64(&payload, &chunk_seq)) {
        WalRecord mark;
        mark.type = WalRecordType::kFlushMark;
        mark.id = lsm::ChunkKeyId(user_key);
        mark.seq = chunk_seq;
        // wal_ is detached during WAL replay (RecoverFromWal), and replayed
        // samples can fill a memtable and flush from right here. Skipping
        // the mark is safe: the records stay replayable and a re-replay of
        // already-flushed samples is idempotent under chunk-seq dedup.
        if (wal_) wal_->Append(mark);
      }
    };
  }
  auto time_lsm = std::make_unique<lsm::TimePartitionedLsm>(
      env_.get(), "lsm", lsm_options, block_cache_.get());
  time_lsm_ = time_lsm.get();
  lsm_ = std::move(time_lsm);
  Status open_status;
  if (options_.enable_wal) {
    wal_ = std::make_unique<WalWriter>(&env_->fast(), "WAL");
    TU_RETURN_IF_ERROR(wal_->Open());
    TU_RETURN_IF_ERROR(lsm_->Open());
    open_status = RecoverFromWal();
  } else {
    open_status = lsm_->Open();
  }
  TU_RETURN_IF_ERROR(open_status);
  // The scrubber exists whenever the backend supports it — ScrubNow()
  // drills work even when the background tick is disabled.
  scrubber_ = std::make_unique<Scrubber>(time_lsm_, env_.get(),
                                         options_.scrub, metrics_.get());
  return StartMaintenance();
}

Status TimeUnionDB::StartMaintenance() {
  if (!options_.background_maintenance) return Status::OK();
  MaintenanceOptions mopts;
  mopts.interval_ms = options_.maintenance_interval_ms;
  mopts.retention_ms = options_.retention_ms;
  mopts.advise_memory_release = true;
  mopts.now = options_.maintenance_clock;
  maintenance_ = std::make_unique<MaintenanceWorker>(
      std::move(mopts), [this](int64_t watermark) {
        if (watermark != INT64_MIN) ApplyRetention(watermark);
        // Auto-resume: while writes are quiesced by a soft background
        // error, probe recovery under the handler's bounded backoff. The
        // first probe is due immediately, so a condition that already
        // cleared (space freed, fsync flake) heals within one tick.
        if (error_handler_.ShouldAttemptResume(SteadyNowMs())) {
          TryResumeInternal();
        }
        // Heal after a slow-tier outage: upload deferred L2 tables parked
        // on the fast tier. Cheap when nothing is deferred or the breaker
        // is still open; its first attempt doubles as the breaker's
        // half-open probe, so recovery needs no operator action.
        if (time_lsm_) time_lsm_->DrainDeferredUploads();
        // Re-derive rollups dirtied by out-of-order rewrites into compacted
        // windows, one partition per tick (budgeted: the re-merge reads the
        // whole partition). Failures stay inside the LSM's error reporting.
        if (time_lsm_) time_lsm_->MaintainRollups();
        // Budgeted integrity increment: verify a slice of the table set,
        // resuming at the persisted cursor (DBOptions::scrub).
        if (scrubber_ && options_.scrub.enabled) scrubber_->Tick();
        if (wal_) wal_->Purge();
        AdviseMemoryRelease();
        if (options_.metrics.enabled && options_.metrics.emit_jsonl) {
          EmitMetricsLine();
        }
      });
  maintenance_->Start();
  return Status::OK();
}

Status TimeUnionDB::MaybeLog(const WalRecord& record) {
  if (!wal_) return Status::OK();
  if (c_wal_appends_ != nullptr) c_wal_appends_->Add();
  // The WAL is the one serialized append point of the write path; the
  // writer's internal mutex orders records, so inserts hold no DB-wide
  // lock here. Latency is sampled 1-in-64 to keep clock reads off the
  // common path.
  const bool timed = h_wal_append_ != nullptr && obs::SampleOneIn<6>();
  const uint64_t append_start_us = timed ? obs::MonotonicUs() : 0;
  Status append_status = wal_->Append(record);
  if (!append_status.ok()) {
    // Background-class even though it fires on a foreground thread: the
    // log is poisoned and every write will fail until the resume probe
    // rotates it — classify, quiesce, auto-resume.
    error_handler_.OnBackgroundError(BgErrorScope::kWalAppend, append_status,
                                     SteadyNowMs());
    return append_status;
  }
  if (timed) h_wal_append_->Observe(obs::MonotonicUs() - append_start_us);
  // Inline purge with hysteresis: a purge can only drop records whose
  // chunks already reached level 0, so when most of the log is still
  // live, purging at a fixed size threshold degenerates into rewriting
  // the whole log on every append. Only purge once the log has doubled
  // past the last purge's result; try_lock skips if a purge is running.
  const uint64_t written = wal_->bytes_written();
  if (written > options_.wal_purge_bytes &&
      written > 2 * wal_post_purge_bytes_.load(std::memory_order_relaxed)) {
    std::unique_lock<std::mutex> purge_lock(wal_purge_mu_, std::try_to_lock);
    if (purge_lock.owns_lock()) {
      TU_RETURN_IF_ERROR(wal_->Purge());
      wal_post_purge_bytes_.store(wal_->bytes_written(),
                                  std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

Status TimeUnionDB::RecoverFromWal() {
  recovery_report_ = RecoveryReport{};
  // Pass 1: newest flush mark per id — samples at or below it are already
  // safe in the (manifest-recovered) LSM.
  std::map<uint64_t, uint64_t> flushed;
  TU_RETURN_IF_ERROR(
      ReplayWal(&env_->fast(), "WAL", [&](const WalRecord& r) -> Status {
        if (r.type == WalRecordType::kFlushMark) {
          flushed[r.id] = std::max(flushed[r.id], r.seq);
        }
        return Status::OK();
      }));

  // Pass 2: rebuild registries, heads and unflushed samples. WAL logging
  // is suppressed during replay by temporarily detaching the writer.
  // Replay is single-threaded (maintenance has not started), but takes the
  // normal locks so the code stays valid under any future overlap.
  auto saved_wal = std::move(wal_);
  WalReplayStats replay_stats;
  Status replay_status =
      ReplayWal(&env_->fast(), "WAL", [&](const WalRecord& r) -> Status {
        switch (r.type) {
          case WalRecordType::kRegisterSeries: {
            std::lock_guard<std::mutex> reg_lock(reg_mu_);
            const std::string key = index::LabelsKey(r.labels);
            uint64_t existing = 0;
            if (LookupSeriesRef(key, &existing)) return Status::OK();
            uint64_t tag_offset = 0;
            TU_RETURN_IF_ERROR(tag_store_->Append(r.labels, &tag_offset));
            TU_RETURN_IF_ERROR(index_->Add(r.id, r.labels));
            SeriesEntry entry;
            entry.head = std::make_unique<mem::SeriesHead>(
                r.id, tag_offset, series_chunks_.get(),
                options_.samples_per_chunk);
            entry.labels = r.labels;
            {
              EntryShard& es = EntryShardFor(r.id);
              std::unique_lock<std::shared_mutex> lock(es.mu);
              es.series.emplace(r.id, std::move(entry));
            }
            {
              KeyShard& ks = KeyShardFor(key);
              std::unique_lock<std::shared_mutex> lock(ks.mu);
              ks.series_by_key[key] = r.id;
            }
            next_id_ = std::max(next_id_, r.id + 1);
            return Status::OK();
          }
          case WalRecordType::kRegisterGroup: {
            std::lock_guard<std::mutex> reg_lock(reg_mu_);
            const std::string key = index::LabelsKey(r.labels);
            uint64_t existing = 0;
            if (LookupGroupRef(key, &existing)) return Status::OK();
            uint64_t tag_offset = 0;
            TU_RETURN_IF_ERROR(tag_store_->Append(r.labels, &tag_offset));
            TU_RETURN_IF_ERROR(index_->Add(r.id, r.labels));
            GroupEntry entry;
            entry.head = std::make_unique<mem::GroupHead>(
                r.id, tag_offset, group_ts_chunks_.get(),
                group_val_chunks_.get(), options_.samples_per_chunk);
            entry.group_labels = r.labels;
            {
              EntryShard& es = EntryShardFor(r.id);
              std::unique_lock<std::shared_mutex> lock(es.mu);
              es.groups.emplace(r.id, std::move(entry));
            }
            {
              KeyShard& ks = KeyShardFor(key);
              std::unique_lock<std::shared_mutex> lock(ks.mu);
              ks.group_by_key[key] = r.id;
            }
            next_id_ = std::max(next_id_, r.id + 1);
            return Status::OK();
          }
          case WalRecordType::kRegisterMember: {
            std::lock_guard<std::mutex> reg_lock(reg_mu_);
            EntryShard& es = EntryShardFor(r.id);
            std::shared_lock<std::shared_mutex> shard_lock(es.mu);
            auto it = es.groups.find(r.id);
            if (it == es.groups.end()) {
              return Status::Corruption("wal member before group");
            }
            GroupEntry& entry = it->second;
            std::lock_guard<std::mutex> entry_lock(append_locks_.For(r.id));
            const std::string key = index::LabelsKey(r.labels);
            if (entry.head->FindMember(key) >= 0) return Status::OK();
            uint64_t tag_offset = 0;
            TU_RETURN_IF_ERROR(tag_store_->Append(r.labels, &tag_offset));
            TU_RETURN_IF_ERROR(index_->Add(r.id, r.labels));
            uint32_t slot = 0;
            TU_RETURN_IF_ERROR(entry.head->AddMember(tag_offset, key, &slot));
            entry.member_labels.resize(
                std::max<size_t>(entry.member_labels.size(), slot + 1));
            entry.member_labels[slot] = r.labels;
            return Status::OK();
          }
          case WalRecordType::kSample: {
            auto it = flushed.find(r.id);
            if (it != flushed.end() && r.seq <= it->second) return Status::OK();
            EntryShard& es = EntryShardFor(r.id);
            std::shared_lock<std::shared_mutex> shard_lock(es.mu);
            auto found = es.series.find(r.id);
            if (found == es.series.end()) {
              return Status::Corruption("wal sample before register");
            }
            std::lock_guard<std::mutex> entry_lock(append_locks_.For(r.id));
            return AppendToSeries(&found->second, r.ts, r.value);
          }
          case WalRecordType::kGroupSample: {
            auto it = flushed.find(r.id);
            if (it != flushed.end() && r.seq <= it->second) return Status::OK();
            EntryShard& es = EntryShardFor(r.id);
            std::shared_lock<std::shared_mutex> shard_lock(es.mu);
            auto found = es.groups.find(r.id);
            if (found == es.groups.end()) {
              return Status::Corruption("wal group sample before register");
            }
            std::lock_guard<std::mutex> entry_lock(append_locks_.For(r.id));
            return AppendRowToGroup(&found->second, r.slots, r.ts, r.values);
          }
          case WalRecordType::kFlushMark:
            return Status::OK();
        }
        return Status::OK();
      },
      &replay_stats);
  wal_ = std::move(saved_wal);
  recovery_report_.wal = replay_stats;
  if (time_lsm_ != nullptr) {
    recovery_report_.tables_quarantined =
        time_lsm_->stats().tables_quarantined.load(std::memory_order_relaxed);
    recovery_report_.orphans_swept =
        time_lsm_->stats().orphans_swept.load(std::memory_order_relaxed);
  }
  if (!replay_stats.Clean() || recovery_report_.tables_quarantined > 0) {
    std::fprintf(stderr, "[timeunion_db] recovery: wal %s, quarantined=%llu\n",
                 replay_stats.ToString().c_str(),
                 static_cast<unsigned long long>(
                     recovery_report_.tables_quarantined));
  }
  return replay_status;
}

Status TimeUnionDB::SyncWal() {
  if (!wal_) return Status::OK();
  Status s = wal_->Sync();
  if (!s.ok()) {
    // fsyncgate discipline: a failed fsync poisons the writer (the kernel
    // may have dropped the dirty pages while marking them clean). Quiesce
    // writes; the resume probe rotates the log, replaying the unacked
    // in-memory tail into a fresh durable file.
    error_handler_.OnBackgroundError(BgErrorScope::kWalSync, s, SteadyNowMs());
  }
  return s;
}

Status TimeUnionDB::TryResumeInternal() {
  error_handler_.OnResumeAttempt();
  Status probe;
  // Order matters: rotate a poisoned WAL first so the retried flushes'
  // flush marks land in a healthy log.
  if (wal_ && !wal_->poison().ok()) probe = wal_->Rotate();
  if (probe.ok() && time_lsm_ != nullptr) {
    probe = time_lsm_->RetryBackgroundWork();
  }
  if (probe.ok()) {
    if (time_lsm_ != nullptr) time_lsm_->ClearBackgroundError();
    error_handler_.OnResumeSuccess();
    if (options_.metrics.enabled) {
      metrics_->trace().Record("resume", "recovered");
    }
  } else {
    error_handler_.OnResumeFailure(probe, SteadyNowMs());
    if (options_.metrics.enabled) {
      metrics_->trace().Record("resume", "failed: " + probe.ToString());
    }
  }
  return probe;
}

Status TimeUnionDB::Resume() {
  if (error_handler_.health() == DbHealth::kHealthy) return Status::OK();
  if (!error_handler_.CanResume()) {
    return Status::Unavailable(
        "db is fatal after background error; reopen required (" +
        error_handler_.LastError().ToString() + ")");
  }
  return TryResumeInternal();
}

// ---------------------------------------------------------------------------
// Registry lookups and slow-path registration
// ---------------------------------------------------------------------------

bool TimeUnionDB::LookupSeriesRef(const std::string& key,
                                  uint64_t* ref) const {
  KeyShard& ks = KeyShardFor(key);
  std::shared_lock<std::shared_mutex> lock(ks.mu);
  auto it = ks.series_by_key.find(key);
  if (it == ks.series_by_key.end()) return false;
  *ref = it->second;
  return true;
}

bool TimeUnionDB::LookupGroupRef(const std::string& key, uint64_t* ref) const {
  KeyShard& ks = KeyShardFor(key);
  std::shared_lock<std::shared_mutex> lock(ks.mu);
  auto it = ks.group_by_key.find(key);
  if (it == ks.group_by_key.end()) return false;
  *ref = it->second;
  return true;
}

Status TimeUnionDB::RegisterSeriesSlow(const Labels& sorted,
                                       const std::string& key,
                                       uint64_t* series_ref) {
  // Double-check under reg_mu_: another registrar may have won the race
  // between the caller's lock-free lookup and this point.
  if (LookupSeriesRef(key, series_ref)) return Status::OK();

  const uint64_t id = next_id_++;
  uint64_t tag_offset = 0;
  TU_RETURN_IF_ERROR(tag_store_->Append(sorted, &tag_offset));
  TU_RETURN_IF_ERROR(index_->Add(id, sorted));

  SeriesEntry fresh;
  fresh.head = std::make_unique<mem::SeriesHead>(
      id, tag_offset, series_chunks_.get(), options_.samples_per_chunk);
  fresh.labels = sorted;
  // Publish the entry before the key mapping, so a ref resolved through
  // the key map always finds its entry.
  {
    EntryShard& es = EntryShardFor(id);
    std::unique_lock<std::shared_mutex> lock(es.mu);
    es.series.emplace(id, std::move(fresh));
  }
  {
    KeyShard& ks = KeyShardFor(key);
    std::unique_lock<std::shared_mutex> lock(ks.mu);
    ks.series_by_key[key] = id;
  }
  *series_ref = id;

  const int64_t bytes =
      static_cast<int64_t>(key.size() + sizeof(SeriesEntry) + 64);
  registry_bytes_ += bytes;
  MemoryTracker::Global().Add(MemCategory::kTags, bytes);

  WalRecord reg;
  reg.type = WalRecordType::kRegisterSeries;
  reg.id = id;
  reg.labels = sorted;
  return MaybeLog(reg);
}

Status TimeUnionDB::RegisterGroupSlow(const Labels& sorted_group,
                                      const std::string& group_key,
                                      uint64_t* group_ref) {
  if (LookupGroupRef(group_key, group_ref)) return Status::OK();

  const uint64_t id = next_id_++;
  uint64_t tag_offset = 0;
  TU_RETURN_IF_ERROR(tag_store_->Append(sorted_group, &tag_offset));
  // Group tags are indexed once with the group ID as postings ID (§3.1).
  TU_RETURN_IF_ERROR(index_->Add(id, sorted_group));

  GroupEntry fresh;
  fresh.head = std::make_unique<mem::GroupHead>(
      id, tag_offset, group_ts_chunks_.get(), group_val_chunks_.get(),
      options_.samples_per_chunk);
  fresh.group_labels = sorted_group;
  {
    EntryShard& es = EntryShardFor(id);
    std::unique_lock<std::shared_mutex> lock(es.mu);
    es.groups.emplace(id, std::move(fresh));
  }
  {
    KeyShard& ks = KeyShardFor(group_key);
    std::unique_lock<std::shared_mutex> lock(ks.mu);
    ks.group_by_key[group_key] = id;
  }
  *group_ref = id;

  const int64_t bytes =
      static_cast<int64_t>(group_key.size() + sizeof(GroupEntry) + 64);
  registry_bytes_ += bytes;
  MemoryTracker::Global().Add(MemCategory::kTags, bytes);

  WalRecord reg;
  reg.type = WalRecordType::kRegisterGroup;
  reg.id = id;
  reg.labels = sorted_group;
  return MaybeLog(reg);
}

Status TimeUnionDB::RegisterSeries(const Labels& labels,
                                   uint64_t* series_ref) {
  Labels sorted = labels;
  index::SortLabels(&sorted);
  const std::string key = index::LabelsKey(sorted);
  if (LookupSeriesRef(key, series_ref)) return Status::OK();
  std::lock_guard<std::mutex> reg_lock(reg_mu_);
  return RegisterSeriesSlow(sorted, key, series_ref);
}

// ---------------------------------------------------------------------------
// Write paths
// ---------------------------------------------------------------------------

Status TimeUnionDB::FlushSeriesChunk(mem::SeriesHead* head, bool* flushed) {
  std::string payload;
  int64_t first_ts = 0;
  *flushed = head->CloseChunk(&payload, &first_ts);
  if (!*flushed) return Status::OK();
  if (c_chunk_flushes_ != nullptr) c_chunk_flushes_->Add();
  obs::ScopedTimer flush_timer(h_chunk_flush_);
  return lsm_->Put(
      lsm::MakeChunkKey(head->id(), first_ts),
      lsm::MakeChunkValue(lsm::ChunkType::kSeries, payload));
}

Status TimeUnionDB::FlushGroupChunk(GroupEntry* entry, bool* flushed) {
  std::string payload;
  int64_t first_ts = 0;
  *flushed = entry->head->CloseChunk(&payload, &first_ts);
  if (!*flushed) return Status::OK();
  if (c_chunk_flushes_ != nullptr) c_chunk_flushes_->Add();
  obs::ScopedTimer flush_timer(h_chunk_flush_);
  return lsm_->Put(
      lsm::MakeChunkKey(entry->head->id(), first_ts),
      lsm::MakeChunkValue(lsm::ChunkType::kGroup, payload));
}

Status TimeUnionDB::AppendToSeries(SeriesEntry* entry, int64_t ts,
                                   double value) {
  mem::SeriesHead* head = entry->head.get();
  for (int attempt = 0; attempt < 3; ++attempt) {
    const int64_t partition_end = lsm_->PartitionEndFor(ts);
    mem::AppendResult result;
    bool too_old = false;
    TU_RETURN_IF_ERROR(
        head->Append(ts, value, partition_end, &result, &too_old));
    if (too_old) {
      // §3.1 case 4: older than the open chunk — route straight to the
      // LSM as a single-sample chunk; the tree's time partitions place it.
      std::string payload;
      compress::EncodeSeriesChunk(head->seq_id(), {Sample{ts, value}},
                                  &payload);
      return lsm_->Put(
          lsm::MakeChunkKey(head->id(), ts),
          lsm::MakeChunkValue(lsm::ChunkType::kSeries, payload));
    }
    switch (result) {
      case mem::AppendResult::kOk:
      case mem::AppendResult::kDuplicate:
        return Status::OK();
      case mem::AppendResult::kChunkClosed: {
        bool flushed = false;
        return FlushSeriesChunk(head, &flushed);
      }
      case mem::AppendResult::kNeedsFlush: {
        bool flushed = false;
        TU_RETURN_IF_ERROR(FlushSeriesChunk(head, &flushed));
        continue;  // retry the append on a fresh chunk
      }
    }
  }
  return Status::Corruption("series append did not converge");
}

Status TimeUnionDB::AdmitWrite(uint64_t num_samples) {
  const DBOptions::AdmissionControl& ac = options_.admission;
  if (!ac.enabled || time_lsm_ == nullptr) return Status::OK();
  const uint64_t limit = options_.lsm.fast_storage_limit_bytes;
  if (limit == 0) return Status::OK();

  // One relaxed RMW per admitted batch; the gauge itself is re-read only
  // when the batch crosses a refresh_every_ops boundary, so pressure
  // transitions lag by at most that many samples.
  const uint64_t op =
      admission_ops_.fetch_add(num_samples, std::memory_order_relaxed);
  if (ac.refresh_every_ops <= 1 || op == 0 ||
      op / ac.refresh_every_ops !=
          (op + num_samples) / ac.refresh_every_ops) {
    const uint64_t fast_bytes = time_lsm_->FastBytesGauge();
    const auto hard =
        static_cast<uint64_t>(ac.hard_watermark * static_cast<double>(limit));
    const auto soft =
        static_cast<uint64_t>(ac.soft_watermark * static_cast<double>(limit));
    int level = 0;
    if (fast_bytes >= hard) {
      level = 2;
    } else if (fast_bytes >= soft) {
      level = 1;
    }
    admission_level_.store(level, std::memory_order_relaxed);
  }

  switch (admission_level_.load(std::memory_order_relaxed)) {
    case 2:
      writes_rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "fast tier over hard watermark; write rejected");
    case 1:
      // Bounded delay, not a queue: the writer eats a fixed pause so
      // ingest slows toward the drain rate without unbounded blocking.
      writers_delayed_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(ac.soft_delay_us));
      return Status::OK();
    default:
      return Status::OK();
  }
}

// ---------------------------------------------------------------------------
// Batched write pipeline
// ---------------------------------------------------------------------------

TimeUnionDB::ShimScratch& TimeUnionDB::TlsShimScratch() {
  static thread_local ShimScratch scratch;
  return scratch;
}

void TimeUnionDB::RowReject(WriteResult* result, const Status& s) {
  ++result->rejected;
  if (result->first_error.ok()) result->first_error = s;
}

Status TimeUnionDB::AppendOneByRef(uint64_t series_ref, int64_t ts,
                                   double value,
                                   std::vector<WalRecord>* wal_out) {
  // Appends are counted exactly in a per-stripe cell (plain load+store
  // under the stripe lock — no locked RMW), and the same cell doubles as
  // the 1-in-64 latency sampling tick: the pre-lock read is racy, which
  // only perturbs *which* ops get timed, never the count, and it warms
  // the cache line the in-lock bump writes. Sampled ops pay the two
  // clock reads; unsampled ops pay two branches and the bump.
  const size_t stripe = append_locks_.IndexFor(series_ref);
  const bool timed =
      h_ingest_append_ != nullptr &&
      ((sample_cells_[stripe].v.load(std::memory_order_relaxed) + 1) & 63) ==
          0;
  const uint64_t append_start_us = timed ? obs::MonotonicUs() : 0;
  EntryShard& es = EntryShardFor(series_ref);
  std::shared_lock<std::shared_mutex> shard_lock(es.mu);
  auto it = es.series.find(series_ref);
  if (it == es.series.end()) {
    return Status::NotFound("unknown series reference");
  }
  // The entry lock serializes the head mutation and keeps the WAL record's
  // seq consistent with the append it logs.
  std::lock_guard<std::mutex> entry_lock(append_locks_.MutexAt(stripe));
  if (sample_cells_ != nullptr) sample_cells_[stripe].Bump();
  TU_RETURN_IF_ERROR(AppendToSeries(&it->second, ts, value));
  if (wal_out != nullptr) {
    WalRecord rec;
    rec.type = WalRecordType::kSample;
    rec.id = series_ref;
    rec.seq = it->second.head->seq_id();
    rec.ts = ts;
    rec.value = value;
    wal_out->push_back(std::move(rec));
  }
  if (timed) [[unlikely]] {
    h_ingest_append_->Observe(obs::MonotonicUs() - append_start_us);
  }
  return Status::OK();
}

void TimeUnionDB::WriteRefSamples(const WriteBatch& batch, WriteResult* result,
                                  std::vector<WalRecord>* wal_out) {
  const size_t n = batch.sample_refs.size();
  size_t i = 0;
  while (i < n) {
    const uint64_t ref = batch.sample_refs[i];
    size_t run_end = i + 1;
    while (run_end < n && batch.sample_refs[run_end] == ref) ++run_end;
    // A run of consecutive rows for one series shares a single shard +
    // stripe lock acquisition — the batched path's second amortization
    // after the WAL. Clients that sort their batches by ref degenerate to
    // one acquisition per series.
    const size_t stripe = append_locks_.IndexFor(ref);
    const bool timed =
        h_ingest_append_ != nullptr &&
        ((sample_cells_[stripe].v.load(std::memory_order_relaxed) + 1) & 63) ==
            0;
    const uint64_t append_start_us = timed ? obs::MonotonicUs() : 0;
    EntryShard& es = EntryShardFor(ref);
    std::shared_lock<std::shared_mutex> shard_lock(es.mu);
    auto it = es.series.find(ref);
    if (it == es.series.end()) {
      for (size_t k = i; k < run_end; ++k) {
        RowReject(result, Status::NotFound("unknown series reference"));
      }
      i = run_end;
      continue;
    }
    {
      std::lock_guard<std::mutex> entry_lock(append_locks_.MutexAt(stripe));
      for (size_t k = i; k < run_end; ++k) {
        if (sample_cells_ != nullptr) sample_cells_[stripe].Bump();
        Status s = AppendToSeries(&it->second, batch.sample_ts[k],
                                  batch.sample_values[k]);
        if (!s.ok()) {
          RowReject(result, s);
          continue;
        }
        ++result->appended;
        if (wal_out != nullptr) {
          WalRecord rec;
          rec.type = WalRecordType::kSample;
          rec.id = ref;
          rec.seq = it->second.head->seq_id();
          rec.ts = batch.sample_ts[k];
          rec.value = batch.sample_values[k];
          wal_out->push_back(std::move(rec));
        }
      }
    }
    if (timed) [[unlikely]] {
      h_ingest_append_->Observe(obs::MonotonicUs() - append_start_us);
    }
    i = run_end;
  }
}

void TimeUnionDB::WriteLabeledSamples(const WriteBatch& batch,
                                      WriteResult* result,
                                      std::vector<WalRecord>* wal_out) {
  if (batch.labeled_samples.empty()) return;
  result->resolved_refs.assign(batch.labeled_samples.size(), 0);
  for (size_t i = 0; i < batch.labeled_samples.size(); ++i) {
    const WriteBatch::LabeledSample& row = batch.labeled_samples[i];
    Labels sorted = row.labels;
    index::SortLabels(&sorted);
    const std::string key = index::LabelsKey(sorted);
    uint64_t ref = 0;
    Status s;
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (!LookupSeriesRef(key, &ref)) {
        std::lock_guard<std::mutex> reg_lock(reg_mu_);
        s = RegisterSeriesSlow(sorted, key, &ref);
        if (!s.ok()) break;
      }
      s = AppendOneByRef(ref, row.ts, row.value, wal_out);
      // NotFound: retention retired the entry between lookup and append (it
      // removed the key mapping too) — re-register and retry once.
      if (!s.IsNotFound()) break;
      s = Status::NotFound("series retired during insert");
    }
    if (s.ok()) {
      result->resolved_refs[i] = ref;
      ++result->appended;
    } else {
      RowReject(result, s);
    }
  }
}

Status TimeUnionDB::Write(const WriteBatch& batch, WriteResult* result) {
  WriteResult local;
  if (result == nullptr) result = &local;
  result->Clear();
  const uint64_t rows = batch.NumRows();
  if (rows == 0) return Status::OK();
  if (batch.sample_refs.size() != batch.sample_ts.size() ||
      batch.sample_refs.size() != batch.sample_values.size()) {
    result->rejected = rows;
    result->first_error =
        Status::InvalidArgument("WriteBatch ref-sample columns not parallel");
    return result->first_error;
  }
  // Batch-scoped gates, paid once per batch instead of once per sample:
  // the quiesce check is one relaxed load, and admission is charged with
  // the whole sample count (at most one soft-watermark delay per batch).
  Status gate = error_handler_.CheckWriteAllowed();
  if (gate.ok()) gate = AdmitWrite(batch.NumSamples());
  if (!gate.ok()) {
    result->rejected = rows;
    result->first_error = gate;
    return gate;
  }
  // Sample records are deferred and appended in one WalWriter::AppendBatch
  // call at the end (one WAL mutex + one file write per batch).
  // Registration records still log immediately inside the resolve paths,
  // preserving the register-before-first-sample order in the log.
  std::vector<WalRecord> deferred;
  std::vector<WalRecord>* wal_out = nullptr;
  if (wal_) {
    deferred.reserve(rows);
    wal_out = &deferred;
  }
  WriteRefSamples(batch, result, wal_out);
  WriteLabeledSamples(batch, result, wal_out);
  WriteGroupRows(batch, result, wal_out);
  WriteLabeledGroupRows(batch, result, wal_out);
  if (wal_out != nullptr && !deferred.empty()) {
    if (c_wal_appends_ != nullptr) c_wal_appends_->Add(deferred.size());
    const bool timed = h_wal_append_ != nullptr && obs::SampleOneIn<6>();
    const uint64_t append_start_us = timed ? obs::MonotonicUs() : 0;
    Status ws = wal_->AppendBatch(deferred.data(), deferred.size());
    if (!ws.ok()) {
      error_handler_.OnBackgroundError(BgErrorScope::kWalAppend, ws,
                                       SteadyNowMs());
      // The heads already hold the samples but the log does not: report
      // the whole batch as failed so no caller acks rows the WAL may lose.
      result->first_error = ws;
      result->rejected += result->appended;
      result->appended = 0;
      return ws;
    }
    if (timed) h_wal_append_->Observe(obs::MonotonicUs() - append_start_us);
    // Inline purge with hysteresis (same policy as MaybeLog): only once
    // the log has doubled past the last purge's result.
    const uint64_t written = wal_->bytes_written();
    if (written > options_.wal_purge_bytes &&
        written > 2 * wal_post_purge_bytes_.load(std::memory_order_relaxed)) {
      std::unique_lock<std::mutex> purge_lock(wal_purge_mu_, std::try_to_lock);
      if (purge_lock.owns_lock()) {
        TU_RETURN_IF_ERROR(wal_->Purge());
        wal_post_purge_bytes_.store(wal_->bytes_written(),
                                    std::memory_order_relaxed);
      }
    }
  }
  return Status::OK();
}

Status TimeUnionDB::Insert(const Labels& labels, int64_t ts, double value,
                           uint64_t* series_ref) {
  ShimScratch& tls = TlsShimScratch();
  tls.batch.Clear();
  tls.batch.AddSample(labels, ts, value);
  TU_RETURN_IF_ERROR(Write(tls.batch, &tls.result));
  TU_RETURN_IF_ERROR(tls.result.first_error);
  *series_ref = tls.result.resolved_refs[0];
  return Status::OK();
}

Status TimeUnionDB::InsertFast(uint64_t series_ref, int64_t ts, double value) {
  ShimScratch& tls = TlsShimScratch();
  tls.batch.Clear();
  tls.batch.AddSample(series_ref, ts, value);
  TU_RETURN_IF_ERROR(Write(tls.batch, &tls.result));
  return tls.result.first_error;
}

Status TimeUnionDB::AppendRowToGroup(GroupEntry* entry,
                                     const std::vector<uint32_t>& slots,
                                     int64_t ts,
                                     const std::vector<double>& values) {
  mem::GroupHead* head = entry->head.get();
  for (int attempt = 0; attempt < 3; ++attempt) {
    const int64_t partition_end = lsm_->PartitionEndFor(ts);
    mem::AppendResult result;
    bool too_old = false;
    TU_RETURN_IF_ERROR(head->InsertRow(ts, slots, values, partition_end,
                                       &result, &too_old));
    if (too_old) {
      // Single-row group chunk straight into the LSM.
      std::vector<compress::GroupRow> rows(1);
      rows[0].timestamp = ts;
      rows[0].values.resize(head->num_members());
      for (size_t i = 0; i < slots.size(); ++i) {
        rows[0].values[slots[i]] = values[i];
      }
      std::string payload;
      compress::EncodeGroupChunk(head->seq_id(),
                                 static_cast<uint32_t>(head->num_members()),
                                 rows, &payload);
      return lsm_->Put(lsm::MakeChunkKey(head->id(), ts),
                       lsm::MakeChunkValue(lsm::ChunkType::kGroup, payload));
    }
    switch (result) {
      case mem::AppendResult::kOk:
      case mem::AppendResult::kDuplicate:
        return Status::OK();
      case mem::AppendResult::kChunkClosed: {
        bool flushed = false;
        return FlushGroupChunk(entry, &flushed);
      }
      case mem::AppendResult::kNeedsFlush: {
        bool flushed = false;
        TU_RETURN_IF_ERROR(FlushGroupChunk(entry, &flushed));
        continue;
      }
    }
  }
  return Status::Corruption("group append did not converge");
}

Status TimeUnionDB::AppendOneGroupRowByRef(uint64_t group_ref,
                                           const std::vector<uint32_t>& slots,
                                           int64_t ts,
                                           const std::vector<double>& values,
                                           std::vector<WalRecord>* wal_out) {
  if (slots.size() != values.size()) {
    return Status::InvalidArgument("slot/value count mismatch");
  }
  if (c_rows_ != nullptr) c_rows_->Add();
  const bool timed = h_group_append_ != nullptr && obs::SampleOneIn<6>();
  const uint64_t append_start_us = timed ? obs::MonotonicUs() : 0;
  EntryShard& es = EntryShardFor(group_ref);
  std::shared_lock<std::shared_mutex> shard_lock(es.mu);
  auto it = es.groups.find(group_ref);
  if (it == es.groups.end()) {
    return Status::NotFound("unknown group reference");
  }
  // Slot validation under the entry lock: a labeled group row may grow the
  // member array concurrently.
  std::lock_guard<std::mutex> entry_lock(append_locks_.For(group_ref));
  for (uint32_t slot : slots) {
    if (slot >= it->second.head->num_members()) {
      return Status::InvalidArgument("member slot out of range");
    }
  }
  TU_RETURN_IF_ERROR(AppendRowToGroup(&it->second, slots, ts, values));
  if (wal_out != nullptr) {
    WalRecord rec;
    rec.type = WalRecordType::kGroupSample;
    rec.id = group_ref;
    rec.seq = it->second.head->seq_id();
    rec.ts = ts;
    rec.slots = slots;
    rec.values = values;
    wal_out->push_back(std::move(rec));
  }
  if (timed) h_group_append_->Observe(obs::MonotonicUs() - append_start_us);
  return Status::OK();
}

void TimeUnionDB::WriteGroupRows(const WriteBatch& batch, WriteResult* result,
                                 std::vector<WalRecord>* wal_out) {
  for (const WriteBatch::GroupRow& row : batch.group_rows) {
    Status s = AppendOneGroupRowByRef(row.group_ref, row.slots, row.ts,
                                      row.values, wal_out);
    if (s.ok()) {
      ++result->appended;
    } else {
      RowReject(result, s);
    }
  }
}

void TimeUnionDB::WriteLabeledGroupRows(const WriteBatch& batch,
                                        WriteResult* result,
                                        std::vector<WalRecord>* wal_out) {
  if (batch.labeled_group_rows.empty()) return;
  result->resolved_groups.resize(batch.labeled_group_rows.size());
  for (size_t i = 0; i < batch.labeled_group_rows.size(); ++i) {
    const WriteBatch::LabeledGroupRow& row = batch.labeled_group_rows[i];
    WriteResult::ResolvedGroup* resolved = &result->resolved_groups[i];
    Status s = [&]() -> Status {
      if (row.member_tags.size() != row.values.size()) {
        return Status::InvalidArgument("member/value count mismatch");
      }
      if (c_rows_ != nullptr) c_rows_->Add();
      Labels sorted_group = row.group_tags;
      index::SortLabels(&sorted_group);
      const std::string group_key = index::LabelsKey(sorted_group);

      // Member resolution may register new members (index/tag-store
      // writes), so the whole slow path serializes behind the registration
      // mutex; the by-ref path never takes it. Member registration records
      // log immediately (not deferred) so a register always precedes the
      // first sample referencing its slot in the WAL.
      std::lock_guard<std::mutex> reg_lock(reg_mu_);
      uint64_t group_ref = 0;
      if (!LookupGroupRef(group_key, &group_ref)) {
        TU_RETURN_IF_ERROR(
            RegisterGroupSlow(sorted_group, group_key, &group_ref));
      }

      EntryShard& es = EntryShardFor(group_ref);
      std::shared_lock<std::shared_mutex> shard_lock(es.mu);
      auto git = es.groups.find(group_ref);
      if (git == es.groups.end()) {
        // Cannot happen while reg_mu_ is held (retention also serializes
        // on it).
        return Status::NotFound("group retired during insert");
      }
      GroupEntry* entry = &git->second;
      std::lock_guard<std::mutex> entry_lock(append_locks_.For(group_ref));

      // Resolve/append members (§3.4: an appending array ordered by first
      // insertion; lookups check whether the timeseries is already
      // recorded).
      std::vector<uint32_t>* slots = &resolved->slots;
      slots->clear();
      slots->reserve(row.member_tags.size());
      for (const Labels& tags : row.member_tags) {
        Labels sorted = tags;
        index::SortLabels(&sorted);
        const std::string key = index::LabelsKey(sorted);
        int slot = entry->head->FindMember(key);
        if (slot < 0) {
          uint64_t tag_offset = 0;
          TU_RETURN_IF_ERROR(tag_store_->Append(sorted, &tag_offset));
          // Member unique tags also map to the group ID in the first-level
          // index.
          TU_RETURN_IF_ERROR(index_->Add(group_ref, sorted));
          uint32_t new_slot = 0;
          TU_RETURN_IF_ERROR(
              entry->head->AddMember(tag_offset, key, &new_slot));
          entry->member_labels.resize(
              std::max<size_t>(entry->member_labels.size(), new_slot + 1));
          entry->member_labels[new_slot] = sorted;
          slot = static_cast<int>(new_slot);

          WalRecord reg;
          reg.type = WalRecordType::kRegisterMember;
          reg.id = group_ref;
          reg.slot = new_slot;
          reg.labels = sorted;
          TU_RETURN_IF_ERROR(MaybeLog(reg));
        }
        slots->push_back(static_cast<uint32_t>(slot));
      }

      TU_RETURN_IF_ERROR(AppendRowToGroup(entry, *slots, row.ts, row.values));
      if (wal_out != nullptr) {
        WalRecord rec;
        rec.type = WalRecordType::kGroupSample;
        rec.id = group_ref;
        rec.seq = entry->head->seq_id();
        rec.ts = row.ts;
        rec.slots = *slots;
        rec.values = row.values;
        wal_out->push_back(std::move(rec));
      }
      resolved->group_ref = group_ref;
      return Status::OK();
    }();
    if (s.ok()) {
      ++result->appended;
    } else {
      RowReject(result, s);
    }
  }
}

Status TimeUnionDB::InsertGroup(const Labels& group_tags,
                                const std::vector<Labels>& member_tags,
                                int64_t ts, const std::vector<double>& values,
                                uint64_t* group_ref,
                                std::vector<uint32_t>* slots) {
  ShimScratch& tls = TlsShimScratch();
  tls.batch.Clear();
  tls.batch.AddGroupRow(group_tags, member_tags, ts, values);
  TU_RETURN_IF_ERROR(Write(tls.batch, &tls.result));
  TU_RETURN_IF_ERROR(tls.result.first_error);
  *group_ref = tls.result.resolved_groups[0].group_ref;
  *slots = tls.result.resolved_groups[0].slots;
  return Status::OK();
}

Status TimeUnionDB::InsertGroupFast(uint64_t group_ref,
                                    const std::vector<uint32_t>& slots,
                                    int64_t ts,
                                    const std::vector<double>& values) {
  ShimScratch& tls = TlsShimScratch();
  tls.batch.Clear();
  tls.batch.AddGroupRow(group_ref, slots, ts, values);
  TU_RETURN_IF_ERROR(Write(tls.batch, &tls.result));
  return tls.result.first_error;
}

// ---------------------------------------------------------------------------
// Query path
// ---------------------------------------------------------------------------

namespace {

bool MatcherMatches(const TagMatcher& m, const Labels& labels) {
  for (const Label& l : labels) {
    if (l.name != m.name) continue;
    if (m.type == TagMatcher::Type::kEqual) return l.value == m.value;
    try {
      return std::regex_match(l.value, std::regex(m.value));
    } catch (const std::regex_error&) {
      return false;
    }
  }
  return false;
}

/// Shared input validation of the two public query entry points.
Status ValidateQueryArgs(const std::vector<TagMatcher>& matchers, int64_t t0,
                         int64_t t1) {
  if (t0 > t1) return Status::InvalidArgument("query time range: t0 > t1");
  if (matchers.empty()) {
    return Status::InvalidArgument("query requires at least one tag matcher");
  }
  return Status::OK();
}

}  // namespace

bool TimeUnionDB::AllowPartialReads(
    query::ReadRequest::Strictness s) const {
  switch (s) {
    case query::ReadRequest::Strictness::kStrict:
      return false;
    case query::ReadRequest::Strictness::kAllowPartial:
      return true;
    case query::ReadRequest::Strictness::kDefault:
      break;
  }
  return !options_.strict_reads;
}

Status TimeUnionDB::QueryIteratorsImpl(const std::vector<TagMatcher>& matchers,
                                       int64_t t0, int64_t t1,
                                       bool allow_partial,
                                       std::vector<SeriesIterResult>* out,
                                       query::QueryStats* stats) {
  out->clear();
  const uint64_t setup_start_us = obs::MonotonicUs();

  index::Postings ids;
  TU_RETURN_IF_ERROR(index_->Select(matchers, &ids));
  const int64_t slack = options_.lsm.partition_upper_bound_ms;

  struct IterSnapshot {
    Labels labels;
    std::vector<Sample> open;
    int member_slot = -1;
  };

  for (uint64_t id : ids) {
    // Snapshot the entry under its shard/entry locks: labels plus the
    // range-filtered open chunk. The LSM read below then runs without any
    // DB lock — anything flushed before the snapshot is already in the
    // LSM, and a flush racing us lands in both sources and dedups by seq
    // inside MergedSeriesIterator.
    EntryShard& es = EntryShardFor(id);
    std::vector<IterSnapshot> snaps;
    {
      std::shared_lock<std::shared_mutex> shard_lock(es.mu);
      auto series_it = es.series.find(id);
      if (series_it != es.series.end()) {
        IterSnapshot snap;
        snap.labels = series_it->second.labels;
        std::lock_guard<std::mutex> entry_lock(append_locks_.For(id));
        TU_RETURN_IF_ERROR(
            series_it->second.head->SnapshotOpen(t0, t1, &snap.open));
        snaps.push_back(std::move(snap));
      } else {
        auto group_it = es.groups.find(id);
        if (group_it == es.groups.end()) continue;  // retired id

        // Second level of indexing (§2.4 challenge 3): locate the members
        // of this group that themselves satisfy every matcher against the
        // union of group tags and member unique tags.
        GroupEntry& entry = group_it->second;
        std::lock_guard<std::mutex> entry_lock(append_locks_.For(id));
        for (uint32_t slot = 0; slot < entry.head->num_members(); ++slot) {
          Labels full = entry.group_labels;
          full.insert(full.end(), entry.member_labels[slot].begin(),
                      entry.member_labels[slot].end());
          bool all_match = true;
          for (const TagMatcher& m : matchers) {
            if (!MatcherMatches(m, full)) {
              all_match = false;
              break;
            }
          }
          if (!all_match) continue;
          IterSnapshot snap;
          index::SortLabels(&full);
          snap.labels = std::move(full);
          snap.member_slot = static_cast<int>(slot);
          TU_RETURN_IF_ERROR(
              entry.head->SnapshotMember(slot, t0, t1, &snap.open));
          snaps.push_back(std::move(snap));
        }
      }
    }

    // Create the LSM iterators after the head snapshots: a chunk flushed
    // in between is visible to the (younger) iterator and dedups against
    // the snapshot inside MergedSeriesIterator.
    for (IterSnapshot& snap : snaps) {
      // Degraded reads: each iterator reports its own gap spans, clamped
      // and merged, so streaming consumers know what the stream may lack.
      std::vector<std::pair<int64_t, int64_t>> missing;
      query::ReadContext ctx;
      ctx.t0 = t0;
      ctx.t1 = t1;
      ctx.matchers = &matchers;
      ctx.scope.allow_partial = allow_partial;
      ctx.scope.missing = allow_partial ? &missing : nullptr;
      ctx.stats = stats;
      std::unique_ptr<lsm::Iterator> lsm_iter;
      TU_RETURN_IF_ERROR(lsm_->NewIteratorForId(id, ctx, &lsm_iter));
      SeriesIterResult result;
      result.id = id;
      result.labels = std::move(snap.labels);
      result.iter = std::make_unique<SampleIterator>(
          id, ctx, std::move(lsm_iter), std::move(snap.open),
          snap.member_slot, slack);
      if (!missing.empty()) result.AddMissing(missing, t0, t1);
      out->push_back(std::move(result));
    }
  }
  const uint64_t setup_us = obs::MonotonicUs() - setup_start_us;
  if (stats != nullptr) stats->setup_us += setup_us;
  if (h_query_setup_ != nullptr) h_query_setup_->Observe(setup_us);
  return Status::OK();
}

void TimeUnionDB::AddQueryTotals(const query::QueryStats& stats) {
  std::lock_guard<std::mutex> lock(query_totals_mu_);
  query_totals_.Add(stats);
  ++queries_run_;
}

Status TimeUnionDB::Query(const query::ReadRequest& request,
                          QueryResult* out) {
  out->clear();
  TU_RETURN_IF_ERROR(
      ValidateQueryArgs(request.matchers, request.t0, request.t1));
  if (request.IsAggregate()) {
    return Status::InvalidArgument(
        "Query: aggregate request (step_ms > 0) — use AggregateQuery");
  }
  const uint64_t query_start_us = obs::MonotonicUs();

  // Query is a thin materializer over the iterator pipeline: build the
  // per-series merged streams, drain each into a vector, union the gap
  // spans. `out->stats` outlives the iterators (both are scoped here), so
  // drain-time counters (block reads, cache hits, decodes) land in it too.
  std::vector<SeriesIterResult> iters;
  TU_RETURN_IF_ERROR(QueryIteratorsImpl(
      request.matchers, request.t0, request.t1,
      AllowPartialReads(request.strictness), &iters, &out->stats));

  const uint64_t drain_start_us = obs::MonotonicUs();
  std::vector<query::SampleBatch> batches;
  for (SeriesIterResult& r : iters) {
    SeriesResult result;
    result.id = r.id;
    result.labels = std::move(r.labels);
    // Vectorized drain: pull whole finalized column runs, then materialize
    // with one exact reservation (the batch sizes are the sample-count
    // metadata) instead of growing the vector sample by sample.
    batches.clear();
    size_t total = 0;
    query::SampleBatch batch;
    while (r.iter->NextBatch(&batch)) {
      total += batch.size();
      batches.push_back(std::move(batch));
    }
    TU_RETURN_IF_ERROR(r.iter->status());
    result.samples.reserve(total);
    for (const query::SampleBatch& b : batches) {
      for (size_t i = 0; i < b.size(); ++i) {
        result.samples.push_back(Sample{b.timestamps[i], b.values[i]});
      }
    }
    // Per-iterator spans are already clamped; the merge unions them across
    // series.
    out->MergeCompleteness(r);
    if (!result.samples.empty()) out->push_back(std::move(result));
  }
  out->stats.drain_us += obs::MonotonicUs() - drain_start_us;

  AddQueryTotals(out->stats);
  if (h_query_e2e_ != nullptr) {
    h_query_e2e_->Observe(obs::MonotonicUs() - query_start_us);
  }
  return Status::OK();
}

Status TimeUnionDB::Query(const std::vector<TagMatcher>& matchers, int64_t t0,
                          int64_t t1, QueryResult* out) {
  return Query(query::ReadRequest::Range(matchers, t0, t1), out);
}

Status TimeUnionDB::QueryIterators(const query::ReadRequest& request,
                                   std::vector<SeriesIterResult>* out,
                                   query::QueryStats* stats) {
  TU_RETURN_IF_ERROR(
      ValidateQueryArgs(request.matchers, request.t0, request.t1));
  if (request.IsAggregate()) {
    return Status::InvalidArgument(
        "QueryIterators: aggregate request (step_ms > 0) — use "
        "AggregateQuery");
  }
  TU_RETURN_IF_ERROR(QueryIteratorsImpl(
      request.matchers, request.t0, request.t1,
      AllowPartialReads(request.strictness), out, stats));
  // DB-lifetime totals for streaming queries capture the creation-time
  // counters (table/partition pruning); counters that accrue while the
  // caller drains the lazy iterators land only in `stats`.
  AddQueryTotals(stats != nullptr ? *stats : query::QueryStats());
  return Status::OK();
}

Status TimeUnionDB::QueryIterators(const std::vector<TagMatcher>& matchers,
                                   int64_t t0, int64_t t1,
                                   std::vector<SeriesIterResult>* out,
                                   query::QueryStats* stats) {
  return QueryIterators(query::ReadRequest::Range(matchers, t0, t1), out,
                        stats);
}

Status TimeUnionDB::AggregateQuery(const query::ReadRequest& request,
                                   AggregateResult* out) {
  const std::vector<TagMatcher>& matchers = request.matchers;
  const int64_t t0 = request.t0;
  const int64_t t1 = request.t1;
  const int64_t step_ms = request.step_ms;
  const query::AggFn fn = request.fn;
  const bool allow_partial = AllowPartialReads(request.strictness);
  out->series.clear();
  out->ResetCompleteness();
  out->stats = query::QueryStats();
  TU_RETURN_IF_ERROR(ValidateQueryArgs(matchers, t0, t1));
  if (step_ms <= 0) {
    return Status::InvalidArgument("AggregateQuery: step_ms must be > 0");
  }
  const uint64_t query_start_us = obs::MonotonicUs();

  // Serving granularity: the largest configured rollup granularity that
  // divides the step, so every step window is a whole number of buckets.
  // No divisor (or the leveled backend) -> everything goes raw, through
  // the same fold kernel.
  int64_t serving_g = 0;
  if (time_lsm_ != nullptr) {
    for (int64_t g : options_.lsm.rollup_granularities_ms) {
      if (g > 0 && step_ms % g == 0) serving_g = std::max(serving_g, g);
    }
  }
  // Raw samples fold at the serving granularity too: each bucket is then
  // built by the identical ascending accumulation compaction ran, which is
  // what makes mixed rollup+raw sums bitwise equal to all-raw sums.
  const int64_t fold_g = serving_g > 0 ? serving_g : step_ms;

  index::Postings ids;
  TU_RETURN_IF_ERROR(index_->Select(matchers, &ids));
  const int64_t slack = options_.lsm.partition_upper_bound_ms;

  struct AggSnapshot {
    Labels labels;
    std::vector<Sample> open;
    int member_slot = -1;
  };

  for (uint64_t id : ids) {
    // Same snapshot discipline as QueryIteratorsImpl: labels plus the
    // range-filtered open chunk under shard/entry locks, then lock-free
    // LSM reads that dedup against the snapshot by seq.
    EntryShard& es = EntryShardFor(id);
    std::vector<AggSnapshot> snaps;
    {
      std::shared_lock<std::shared_mutex> shard_lock(es.mu);
      auto series_it = es.series.find(id);
      if (series_it != es.series.end()) {
        AggSnapshot snap;
        snap.labels = series_it->second.labels;
        std::lock_guard<std::mutex> entry_lock(append_locks_.For(id));
        TU_RETURN_IF_ERROR(
            series_it->second.head->SnapshotOpen(t0, t1, &snap.open));
        snaps.push_back(std::move(snap));
      } else {
        auto group_it = es.groups.find(id);
        if (group_it == es.groups.end()) continue;  // retired id
        GroupEntry& entry = group_it->second;
        std::lock_guard<std::mutex> entry_lock(append_locks_.For(id));
        for (uint32_t slot = 0; slot < entry.head->num_members(); ++slot) {
          Labels full = entry.group_labels;
          full.insert(full.end(), entry.member_labels[slot].begin(),
                      entry.member_labels[slot].end());
          bool all_match = true;
          for (const TagMatcher& m : matchers) {
            if (!MatcherMatches(m, full)) {
              all_match = false;
              break;
            }
          }
          if (!all_match) continue;
          AggSnapshot snap;
          index::SortLabels(&full);
          snap.labels = std::move(full);
          snap.member_slot = static_cast<int>(slot);
          TU_RETURN_IF_ERROR(
              entry.head->SnapshotMember(slot, t0, t1, &snap.open));
          snaps.push_back(std::move(snap));
        }
      }
    }

    for (AggSnapshot& snap : snaps) {
      // Plan: individual series serve bucket-aligned interiors from rollup
      // partitions; group members (whose chunks rollups never summarize)
      // and configurations without a dividing granularity go all-raw.
      lsm::TimePartitionedLsm::RollupPlan plan;
      if (serving_g > 0 && snap.member_slot < 0) {
        // The open head chunk is newer than every rollup; its span is
        // dirty by definition.
        std::vector<std::pair<int64_t, int64_t>> extra_dirty;
        if (!snap.open.empty()) {
          extra_dirty.emplace_back(snap.open.front().timestamp,
                                   snap.open.back().timestamp);
        }
        query::ReadContext plan_ctx;
        plan_ctx.t0 = t0;
        plan_ctx.t1 = t1;
        plan_ctx.matchers = &matchers;
        plan_ctx.stats = &out->stats;
        TU_RETURN_IF_ERROR(time_lsm_->PlanRollupRead(
            id, plan_ctx, serving_g, extra_dirty, &plan));
      } else {
        plan.raw_spans.emplace_back(t0, t1);
      }

      // Raw fallback spans drain through the same merged batch pipeline a
      // plain Query uses, folded into fold_g buckets as they stream.
      std::vector<std::pair<int64_t, int64_t>> missing;
      std::vector<compress::RollupBucket> raw_buckets;
      for (const auto& [lo, hi] : plan.raw_spans) {
        query::ReadContext ctx;
        ctx.t0 = lo;
        ctx.t1 = hi;
        ctx.matchers = &matchers;
        ctx.scope.allow_partial = allow_partial;
        ctx.scope.missing = allow_partial ? &missing : nullptr;
        ctx.stats = &out->stats;
        std::unique_ptr<lsm::Iterator> lsm_iter;
        TU_RETURN_IF_ERROR(lsm_->NewIteratorForId(id, ctx, &lsm_iter));
        std::vector<Sample> open_span;
        for (const Sample& s : snap.open) {
          if (s.timestamp >= lo && s.timestamp <= hi) open_span.push_back(s);
        }
        SampleIterator iter(id, ctx, std::move(lsm_iter),
                            std::move(open_span), snap.member_slot, slack);
        query::SampleBatch batch;
        while (iter.NextBatch(&batch)) {
          query::AccumulateIntoBuckets(batch.timestamps.data(),
                                       batch.values.data(), batch.size(),
                                       fold_g, &raw_buckets);
          out->stats.raw_edge_samples += batch.size();
        }
        TU_RETURN_IF_ERROR(iter.status());
      }

      // Raw spans ascend and never share a bucket with a rollup-covered
      // span (coverage is whole g-buckets), so a plain ordered merge of
      // the two disjoint ascending runs restores the full bucket stream.
      std::vector<compress::RollupBucket> combined;
      combined.reserve(plan.buckets.size() + raw_buckets.size());
      std::merge(plan.buckets.begin(), plan.buckets.end(),
                 raw_buckets.begin(), raw_buckets.end(),
                 std::back_inserter(combined),
                 [](const compress::RollupBucket& a,
                    const compress::RollupBucket& b) {
                   return a.start < b.start;
                 });

      AggregateSeries series;
      series.id = id;
      series.labels = std::move(snap.labels);
      series.points = query::FoldBuckets(combined, step_ms, fn);
      if (!missing.empty()) out->AddMissing(missing, t0, t1);
      if (!series.points.empty()) out->series.push_back(std::move(series));
    }
  }

  AddQueryTotals(out->stats);
  if (h_query_e2e_ != nullptr) {
    h_query_e2e_->Observe(obs::MonotonicUs() - query_start_us);
  }
  return Status::OK();
}

Status TimeUnionDB::AggregateQuery(const std::vector<TagMatcher>& matchers,
                                   int64_t t0, int64_t t1, int64_t step_ms,
                                   query::AggFn fn, AggregateResult* out) {
  return AggregateQuery(
      query::ReadRequest::Aggregate(matchers, t0, t1, step_ms, fn), out);
}

// ---------------------------------------------------------------------------
// Maintenance
// ---------------------------------------------------------------------------

Status TimeUnionDB::ListTagValues(const std::string& tag_name,
                                  std::vector<std::string>* values) const {
  // The index is internally synchronized, but a slow-path insert touches
  // it once per label; serializing against registration gives this API an
  // insert-atomic view of multi-label series.
  std::lock_guard<std::mutex> reg_lock(reg_mu_);
  return index_->TagValues(tag_name, values);
}

Status TimeUnionDB::Flush() {
  for (uint32_t shard = 0; shard <= shard_mask_; ++shard) {
    EntryShard& es = entry_shards_[shard];
    std::shared_lock<std::shared_mutex> shard_lock(es.mu);
    for (auto& [id, entry] : es.series) {
      std::lock_guard<std::mutex> entry_lock(append_locks_.For(id));
      bool flushed = false;
      TU_RETURN_IF_ERROR(FlushSeriesChunk(entry.head.get(), &flushed));
    }
    for (auto& [id, entry] : es.groups) {
      std::lock_guard<std::mutex> entry_lock(append_locks_.For(id));
      bool flushed = false;
      TU_RETURN_IF_ERROR(FlushGroupChunk(&entry, &flushed));
    }
  }
  TU_RETURN_IF_ERROR(lsm_->FlushAll());
  if (wal_) {
    TU_RETURN_IF_ERROR(wal_->Sync());
  }
  return Status::OK();
}

Status TimeUnionDB::ApplyRetention(int64_t watermark) {
  // Retention unlinks registry entries and mutates the index, so it
  // serializes with registration; appenders are only excluded per shard
  // while that shard's dead entries are erased.
  std::lock_guard<std::mutex> reg_lock(reg_mu_);
  TU_RETURN_IF_ERROR(lsm_->ApplyRetention(watermark));

  // Purge memory objects whose newest sample is older than the watermark
  // (§3.3 data retention).
  for (uint32_t shard = 0; shard <= shard_mask_; ++shard) {
    EntryShard& es = entry_shards_[shard];
    std::unique_lock<std::shared_mutex> shard_lock(es.mu);
    for (auto it = es.series.begin(); it != es.series.end();) {
      // Never-written heads report last_ts == INT64_MIN; skip them so a
      // freshly registered ref can't be retired before its first append.
      if (it->second.head->last_ts() != INT64_MIN &&
          it->second.head->last_ts() < watermark) {
        TU_RETURN_IF_ERROR(index_->Remove(it->first, it->second.labels));
        const std::string key = index::LabelsKey(it->second.labels);
        {
          KeyShard& ks = KeyShardFor(key);
          std::unique_lock<std::shared_mutex> key_lock(ks.mu);
          ks.series_by_key.erase(key);
        }
        it = es.series.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = es.groups.begin(); it != es.groups.end();) {
      if (it->second.head->last_ts() != INT64_MIN &&
          it->second.head->last_ts() < watermark) {
        TU_RETURN_IF_ERROR(index_->Remove(it->first, it->second.group_labels));
        for (const Labels& member : it->second.member_labels) {
          TU_RETURN_IF_ERROR(index_->Remove(it->first, member));
        }
        const std::string key = index::LabelsKey(it->second.group_labels);
        {
          KeyShard& ks = KeyShardFor(key);
          std::unique_lock<std::shared_mutex> key_lock(ks.mu);
          ks.group_by_key.erase(key);
        }
        it = es.groups.erase(it);
      } else {
        ++it;
      }
    }
  }
  return Status::OK();
}

uint64_t TimeUnionDB::NumSeries() const {
  uint64_t total = 0;
  for (uint32_t shard = 0; shard <= shard_mask_; ++shard) {
    EntryShard& es = entry_shards_[shard];
    std::shared_lock<std::shared_mutex> lock(es.mu);
    total += es.series.size();
  }
  return total;
}

uint64_t TimeUnionDB::NumGroups() const {
  uint64_t total = 0;
  for (uint32_t shard = 0; shard <= shard_mask_; ++shard) {
    EntryShard& es = entry_shards_[shard];
    std::shared_lock<std::shared_mutex> lock(es.mu);
    total += es.groups.size();
  }
  return total;
}

uint64_t TimeUnionDB::IndexMemoryUsage() const { return index_->MemoryUsage(); }

uint64_t TimeUnionDB::SumSampleCells() const {
  if (sample_cells_ == nullptr) return 0;
  uint64_t total = 0;
  for (size_t i = 0; i < append_locks_.stripes(); ++i) {
    total += sample_cells_[i].v.load(std::memory_order_relaxed);
  }
  return total;
}

Status TimeUnionDB::ScrubNow(Scrubber::PassReport* report) {
  if (scrubber_ == nullptr) {
    return Status::InvalidArgument(
        "ScrubNow requires the time-partitioned backend");
  }
  return scrubber_->RunFullPass(report);
}

obs::MetricsSnapshot TimeUnionDB::Metrics() const {
  // Start from the registry (instrument histograms/counters + event trace)
  // and fold in the counters that live outside it — tier I/O, breaker,
  // cache, LSM stats, query totals — so one snapshot is the whole story.
  obs::MetricsSnapshot snap = metrics_->Snapshot();
  auto add_c = [&snap](std::string name, uint64_t v) {
    snap.counters.emplace_back(std::move(name), v);
  };
  auto add_g = [&snap](std::string name, int64_t v) {
    snap.gauges.emplace_back(std::move(name), v);
  };
  auto load = [](const std::atomic<uint64_t>& v) {
    return v.load(std::memory_order_relaxed);
  };

  // Series appends are counted in per-stripe cells (see AppendSampleByRef)
  // rather than a registry counter, so they fold in here like the other
  // external totals.
  add_c("ingest.samples", SumSampleCells());

  auto add_tier = [&](const std::string& prefix,
                      const cloud::TierCounters& c) {
    add_c(prefix + ".gets", load(c.get_ops));
    add_c(prefix + ".puts", load(c.put_ops));
    add_c(prefix + ".deletes", load(c.delete_ops));
    add_c(prefix + ".read_bytes", load(c.bytes_read));
    add_c(prefix + ".written_bytes", load(c.bytes_written));
    add_c(prefix + ".charged_us", load(c.charged_us));
    add_c(prefix + ".faults", load(c.faults_injected));
    add_c(prefix + ".retries", load(c.retries));
    add_c(prefix + ".give_ups", load(c.retry_give_ups));
    add_c(prefix + ".breaker_rejections", load(c.breaker_rejections));
    add_c(prefix + ".breaker_opens", load(c.breaker_opens));
  };
  add_tier("fast", env_->fast().counters());
  add_tier("slow", env_->slow().counters());

  const cloud::CircuitBreaker& breaker = env_->slow().breaker();
  add_g("breaker.enabled", breaker.enabled() ? 1 : 0);
  add_g("breaker.state", static_cast<int64_t>(breaker.state()));

  add_c("admission.writers_delayed",
        writers_delayed_.load(std::memory_order_relaxed));
  add_c("admission.writes_rejected",
        writes_rejected_.load(std::memory_order_relaxed));

  add_g("cache.enabled", block_cache_ != nullptr ? 1 : 0);
  add_g("cache.usage",
        block_cache_ != nullptr
            ? static_cast<int64_t>(block_cache_->usage())
            : 0);
  add_c("cache.hits", block_cache_ != nullptr ? block_cache_->hits() : 0);
  add_c("cache.misses", block_cache_ != nullptr ? block_cache_->misses() : 0);
  add_c("cache.evictions",
        block_cache_ != nullptr ? block_cache_->evictions() : 0);

  if (time_lsm_ != nullptr) {
    const lsm::TimeLsmStats& s = time_lsm_->stats();
    add_c("lsm.flushes", load(s.flushes));
    add_c("lsm.compactions_l0_l1", load(s.l0_to_l1_compactions));
    add_c("lsm.compactions_l1_l2", load(s.l1_to_l2_compactions));
    add_c("lsm.patches_created", load(s.patches_created));
    add_c("lsm.patch_merges", load(s.patch_merges));
    add_c("lsm.partitions_retired", load(s.partitions_retired));
    add_c("lsm.fast_bytes_written", load(s.fast_bytes_written));
    add_c("lsm.slow_bytes_written", load(s.slow_bytes_written));
    add_c("lsm.compaction_us_total", load(s.compaction_us));
    add_c("lsm.tables_quarantined", load(s.tables_quarantined));
    add_c("lsm.orphans_swept", load(s.orphans_swept));
    add_c("lsm.deferred_tables_created", load(s.deferred_tables_created));
    add_c("lsm.deferred_uploads_drained", load(s.deferred_uploads_drained));
    add_c("lsm.deferred_drain_failures", load(s.deferred_drain_failures));
    add_c("lsm.partial_read_skips", load(s.partial_read_skips));
    add_c("lsm.rollup_tables_built", load(s.rollup_tables_built));
    add_c("lsm.rollup_partitions_rederived",
          load(s.rollup_partitions_rederived));
    add_c("integrity.read_corruptions_detected",
          load(s.read_corruptions_detected));
    add_c("integrity.read_corruptions_healed",
          load(s.read_corruptions_healed));
    add_c("integrity.tier_fallback_opens", load(s.tier_fallback_opens));
    add_c("integrity.runtime_quarantines", load(s.runtime_quarantines));
    add_g("lsm.rollup_tables",
          static_cast<int64_t>(time_lsm_->NumRollupTables()));
    add_g("lsm.rollup_dirty_partitions",
          static_cast<int64_t>(time_lsm_->NumDirtyRollupPartitions()));
    add_g("lsm.fast_bytes", static_cast<int64_t>(time_lsm_->FastBytesGauge()));
    add_g("lsm.fast_limit_bytes",
          static_cast<int64_t>(options_.lsm.fast_storage_limit_bytes));
    add_g("lsm.deferred_tables",
          static_cast<int64_t>(time_lsm_->NumDeferredTables()));
    add_g("lsm.deferred_bytes",
          static_cast<int64_t>(time_lsm_->DeferredBytes()));
  } else if (leveled_lsm_ != nullptr) {
    const lsm::CompactionStats& s = leveled_lsm_->stats();
    add_c("lsm.compactions", load(s.compactions));
    add_c("lsm.tables_read", load(s.tables_read));
    add_c("lsm.bytes_read", load(s.bytes_read));
    add_c("lsm.bytes_written", load(s.bytes_written));
    add_c("lsm.slow_bytes_written", load(s.slow_bytes_written));
    add_c("lsm.compaction_us_total", load(s.total_us));
    add_c("integrity.read_corruptions_detected",
          load(s.read_corruptions_detected));
    add_c("integrity.read_corruptions_healed",
          load(s.read_corruptions_healed));
    add_c("integrity.runtime_quarantines", load(s.runtime_quarantines));
  }
  add_g("scrub.enabled", options_.scrub.enabled ? 1 : 0);

  {
    std::lock_guard<std::mutex> lock(query_totals_mu_);
    add_c("query.runs", queries_run_);
    add_c("query.partitions_pruned", query_totals_.partitions_pruned);
    add_c("query.tables_considered", query_totals_.tables_considered);
    add_c("query.tables_pruned_id", query_totals_.tables_pruned_id);
    add_c("query.tables_pruned_time", query_totals_.tables_pruned_time);
    add_c("query.tables_pruned_bloom", query_totals_.tables_pruned_bloom);
    add_c("query.tables_skipped_unreachable",
          query_totals_.tables_skipped_unreachable);
    add_c("query.blocks_read", query_totals_.blocks_read);
    add_c("query.blocks_pruned", query_totals_.blocks_pruned);
    add_c("query.cache_hits", query_totals_.cache_hits);
    add_c("query.cache_misses", query_totals_.cache_misses);
    add_c("query.slow_tier_fetches", query_totals_.slow_tier_fetches);
    add_c("query.block_bytes_read", query_totals_.block_bytes_read);
    add_c("query.chunks_decoded", query_totals_.chunks_decoded);
    add_c("query.bytes_decoded", query_totals_.bytes_decoded);
    add_c("query.batches_decoded", query_totals_.batches_decoded);
    add_c("query.samples_decoded", query_totals_.samples_decoded);
    add_c("query.rollup_buckets_served", query_totals_.rollup_buckets_served);
    add_c("query.raw_edge_samples", query_totals_.raw_edge_samples);
    add_c("query.setup_us_total", query_totals_.setup_us);
    add_c("query.drain_us_total", query_totals_.drain_us);
  }

  add_g("db.series", static_cast<int64_t>(NumSeries()));
  add_g("db.groups", static_cast<int64_t>(NumGroups()));

  // Background-error state machine: one gauge for dashboards to alert on,
  // the full counter set for postmortems, and string views of the health
  // name and last error so a single snapshot explains *why* writes are
  // quiesced without a debugger.
  {
    const DbHealth health = error_handler_.health();
    const ErrorHandler::Counters ec = error_handler_.counters();
    add_g("db.health_state", static_cast<int64_t>(health));
    add_g("db.background_error", error_handler_.LastError().ok() ? 0 : 1);
    add_c("error_handler.errors_total", ec.errors_total);
    add_c("error_handler.errors_soft", ec.soft_errors);
    add_c("error_handler.errors_hard", ec.hard_errors);
    add_c("error_handler.errors_fatal", ec.fatal_errors);
    add_c("error_handler.errors_noted", ec.noted_errors);
    add_c("error_handler.resume_attempts", ec.resume_attempts);
    add_c("error_handler.resumes_succeeded", ec.resumes_succeeded);
    add_c("error_handler.resume_failures", ec.resume_failures);
    for (int i = 0; i < kNumBgErrorScopes; ++i) {
      add_c(std::string("error_handler.errors_by_scope.") +
                BgErrorScopeName(static_cast<BgErrorScope>(i)),
            ec.errors_by_scope[i]);
    }
    snap.strings.emplace_back("db.health", DbHealthName(health));
    snap.strings.emplace_back("db.last_background_error",
                              error_handler_.LastError().ToString());
  }

  snap.Canonicalize();
  return snap;
}

core::HealthReport TimeUnionDB::HealthReport() const {
  // A typed view over the metrics snapshot: every numeric field is read
  // from the same source Metrics() exposes, so the two cannot diverge
  // (obs_test asserts parity). Only the background-error Status is richer
  // than a gauge and is read from the LSM directly.
  const obs::MetricsSnapshot snap = Metrics();
  core::HealthReport r;
  r.breaker_enabled = snap.GaugeOr0("breaker.enabled") != 0;
  r.slow_breaker =
      static_cast<cloud::BreakerState>(snap.GaugeOr0("breaker.state"));
  r.breaker_rejections = snap.CounterOr0("slow.breaker_rejections");
  r.breaker_opens = snap.CounterOr0("slow.breaker_opens");
  r.deferred_tables = static_cast<size_t>(snap.GaugeOr0("lsm.deferred_tables"));
  r.deferred_bytes =
      static_cast<uint64_t>(snap.GaugeOr0("lsm.deferred_bytes"));
  r.deferred_uploads_drained = snap.CounterOr0("lsm.deferred_uploads_drained");
  r.fast_bytes = static_cast<uint64_t>(snap.GaugeOr0("lsm.fast_bytes"));
  r.fast_limit_bytes =
      static_cast<uint64_t>(snap.GaugeOr0("lsm.fast_limit_bytes"));
  r.writers_delayed = snap.CounterOr0("admission.writers_delayed");
  r.writes_rejected = snap.CounterOr0("admission.writes_rejected");
  r.block_cache_enabled = snap.GaugeOr0("cache.enabled") != 0;
  r.block_cache_usage = static_cast<size_t>(snap.GaugeOr0("cache.usage"));
  r.block_cache_hits = snap.CounterOr0("cache.hits");
  r.block_cache_misses = snap.CounterOr0("cache.misses");
  r.block_cache_evictions = snap.CounterOr0("cache.evictions");
  r.scrub_enabled = snap.GaugeOr0("scrub.enabled") != 0;
  r.scrub_passes = snap.CounterOr0("scrub.passes");
  r.scrub_corruptions_found = snap.CounterOr0("scrub.corruptions_found");
  r.scrub_repaired = snap.CounterOr0("scrub.repaired");
  r.scrub_quarantined = snap.CounterOr0("scrub.quarantined");
  r.read_corruptions_detected =
      snap.CounterOr0("integrity.read_corruptions_detected");
  r.read_corruptions_healed =
      snap.CounterOr0("integrity.read_corruptions_healed");
  r.server_open_connections =
      static_cast<uint64_t>(snap.GaugeOr0("server.open_connections"));
  r.server_inflight_requests =
      static_cast<uint64_t>(snap.GaugeOr0("server.inflight_requests"));
  r.server_tenant_rejects = snap.CounterOr0("server.tenant_rejects");
  if (time_lsm_ != nullptr) {
    r.last_background_error = time_lsm_->last_background_error();
  }
  r.health = error_handler_.health();
  {
    const ErrorHandler::Counters ec = error_handler_.counters();
    r.background_errors = ec.errors_total;
    r.background_errors_soft = ec.soft_errors;
    r.background_errors_hard = ec.hard_errors;
    r.resume_attempts = ec.resume_attempts;
    r.resumes_succeeded = ec.resumes_succeeded;
    r.resume_failures = ec.resume_failures;
  }
  return r;
}

std::string TimeUnionDB::CountersReport() const {
  // Formatter over the same snapshot (the format predates the registry and
  // is asserted by tests, so it is reconstructed field by field).
  const obs::MetricsSnapshot snap = Metrics();
  auto tier_line = [&snap](const std::string& label, const std::string& p) {
    std::ostringstream os;
    os << label << ": gets=" << snap.CounterOr0(p + ".gets")
       << " puts=" << snap.CounterOr0(p + ".puts")
       << " deletes=" << snap.CounterOr0(p + ".deletes")
       << " read_bytes=" << snap.CounterOr0(p + ".read_bytes")
       << " written_bytes=" << snap.CounterOr0(p + ".written_bytes")
       << " charged_ms=" << snap.CounterOr0(p + ".charged_us") / 1000
       << " faults=" << snap.CounterOr0(p + ".faults")
       << " retries=" << snap.CounterOr0(p + ".retries")
       << " give_ups=" << snap.CounterOr0(p + ".give_ups")
       << " breaker_rejections=" << snap.CounterOr0(p + ".breaker_rejections")
       << " breaker_opens=" << snap.CounterOr0(p + ".breaker_opens");
    return os.str();
  };
  std::string report =
      tier_line("fast(EBS)", "fast") + "\n" + tier_line("slow(S3)", "slow");
  if (snap.GaugeOr0("breaker.enabled") != 0) {
    report += " breaker=";
    report += cloud::BreakerStateName(
        static_cast<cloud::BreakerState>(snap.GaugeOr0("breaker.state")));
  }
  char buf[512];
  if (snap.GaugeOr0("cache.enabled") != 0) {
    std::snprintf(buf, sizeof(buf),
                  "\nblock_cache: hits=%llu misses=%llu evictions=%llu "
                  "usage=%zu",
                  static_cast<unsigned long long>(snap.CounterOr0("cache.hits")),
                  static_cast<unsigned long long>(
                      snap.CounterOr0("cache.misses")),
                  static_cast<unsigned long long>(
                      snap.CounterOr0("cache.evictions")),
                  static_cast<size_t>(snap.GaugeOr0("cache.usage")));
  } else {
    std::snprintf(buf, sizeof(buf), "\nblock_cache: disabled");
  }
  report += buf;
  query::QueryStats totals;
  totals.partitions_pruned = snap.CounterOr0("query.partitions_pruned");
  totals.tables_considered = snap.CounterOr0("query.tables_considered");
  totals.tables_pruned_id = snap.CounterOr0("query.tables_pruned_id");
  totals.tables_pruned_time = snap.CounterOr0("query.tables_pruned_time");
  totals.tables_pruned_bloom = snap.CounterOr0("query.tables_pruned_bloom");
  totals.tables_skipped_unreachable =
      snap.CounterOr0("query.tables_skipped_unreachable");
  totals.blocks_read = snap.CounterOr0("query.blocks_read");
  totals.blocks_pruned = snap.CounterOr0("query.blocks_pruned");
  totals.cache_hits = snap.CounterOr0("query.cache_hits");
  totals.cache_misses = snap.CounterOr0("query.cache_misses");
  totals.slow_tier_fetches = snap.CounterOr0("query.slow_tier_fetches");
  totals.block_bytes_read = snap.CounterOr0("query.block_bytes_read");
  totals.chunks_decoded = snap.CounterOr0("query.chunks_decoded");
  totals.bytes_decoded = snap.CounterOr0("query.bytes_decoded");
  totals.batches_decoded = snap.CounterOr0("query.batches_decoded");
  totals.samples_decoded = snap.CounterOr0("query.samples_decoded");
  totals.rollup_buckets_served = snap.CounterOr0("query.rollup_buckets_served");
  totals.raw_edge_samples = snap.CounterOr0("query.raw_edge_samples");
  totals.setup_us = snap.CounterOr0("query.setup_us_total");
  totals.drain_us = snap.CounterOr0("query.drain_us_total");
  std::snprintf(buf, sizeof(buf), "\nqueries: run=%llu ",
                static_cast<unsigned long long>(snap.CounterOr0("query.runs")));
  report += buf;
  report += totals.ToString();
  return report;
}

void TimeUnionDB::EmitMetricsLine() {
  const std::string path = env_->workspace() + "/metrics.jsonl";
  std::ofstream out(path, std::ios::app);
  if (!out) return;
  out << "{\"ts_ms\":" << obs::WallMs()
      << ",\"metrics\":" << Metrics().ToJson() << "}\n";
}

void TimeUnionDB::AdviseMemoryRelease() {
  index_->AdviseDontNeed();
  {
    // The tag store is externally synchronized by reg_mu_ (registration is
    // its only writer).
    std::lock_guard<std::mutex> reg_lock(reg_mu_);
    tag_store_->AdviseDontNeed();
  }
  series_chunks_->AdviseDontNeed();
  group_ts_chunks_->AdviseDontNeed();
  group_val_chunks_->AdviseDontNeed();
}

}  // namespace tu::core
