#include "core/timeunion_db.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <regex>

#include <chrono>
#include <thread>

#include "lsm/key_format.h"
#include "util/interval_set.h"
#include "util/memory_tracker.h"
#include "util/mmap_file.h"

namespace tu::core {

using compress::Sample;
using index::Label;
using index::Labels;
using index::TagMatcher;

namespace {

uint32_t RoundUpPow2(uint32_t n) {
  uint32_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

TimeUnionDB::TimeUnionDB(DBOptions options)
    : options_(std::move(options)),
      append_locks_(std::max<uint32_t>(1, options_.append_lock_stripes)) {
  const uint32_t shards =
      RoundUpPow2(std::max<uint32_t>(1, options_.registry_shards));
  shard_mask_ = shards - 1;
  key_shards_ = std::make_unique<KeyShard[]>(shards);
  entry_shards_ = std::make_unique<EntryShard[]>(shards);
}

TimeUnionDB::~TimeUnionDB() {
  if (maintenance_) maintenance_->Stop();
  // Tear down the LSM before the WAL writer: its background flush workers
  // fire the on_flush hook, which appends flush marks through wal_. Member
  // destruction alone would run in reverse declaration order and free wal_
  // while those workers can still be draining.
  time_lsm_ = nullptr;
  leveled_lsm_ = nullptr;
  lsm_.reset();
  wal_.reset();
  MemoryTracker::Global().Sub(MemCategory::kTags, registry_bytes_);
}

Status TimeUnionDB::Open(DBOptions options, std::unique_ptr<TimeUnionDB>* db) {
  std::unique_ptr<TimeUnionDB> result(new TimeUnionDB(std::move(options)));
  TU_RETURN_IF_ERROR(result->Init());
  *db = std::move(result);
  return Status::OK();
}

Status TimeUnionDB::Init() {
  env_ = std::make_unique<cloud::TieredEnv>(options_.workspace,
                                            options_.env_options);
  // block_cache_bytes == 0 disables caching outright (readers tolerate a
  // null cache) instead of running a sharded cache that evicts every block.
  if (options_.block_cache_bytes > 0) {
    block_cache_ =
        std::make_unique<lsm::BlockCache>(options_.block_cache_bytes);
  }

  // Mmap-backed structures are working storage; recovery rebuilds them from
  // the WAL, so a fresh open starts them clean.
  const std::string mmap_dir = env_->mmap_dir();
  TU_RETURN_IF_ERROR(RemoveDirRecursive(mmap_dir));
  TU_RETURN_IF_ERROR(EnsureDir(mmap_dir));

  index_ = std::make_unique<index::InvertedIndex>(mmap_dir, "index",
                                                  options_.trie);
  TU_RETURN_IF_ERROR(index_->Init());
  tag_store_ = std::make_unique<index::TagStore>(mmap_dir, "tags");
  series_chunks_ = std::make_unique<mem::ChunkArray>(
      mmap_dir, "series_chunks", options_.series_chunk_bytes);
  group_ts_chunks_ = std::make_unique<mem::ChunkArray>(
      mmap_dir, "group_ts_chunks", options_.group_ts_chunk_bytes);
  group_val_chunks_ = std::make_unique<mem::ChunkArray>(
      mmap_dir, "group_val_chunks", options_.group_val_chunk_bytes);

  if (options_.backend == DBOptions::Backend::kLeveled) {
    // TU-LDB baseline: TimeUnion data model over a classic leveled LSM
    // (first two levels fast, deeper levels slow). WAL unsupported here.
    auto leveled = std::make_unique<lsm::LeveledLsm>(
        env_.get(), "lsm", options_.leveled, block_cache_.get());
    leveled_lsm_ = leveled.get();
    lsm_ = std::move(leveled);
    TU_RETURN_IF_ERROR(lsm_->Open());
    return StartMaintenance();
  }

  lsm::TimeLsmOptions lsm_options = options_.lsm;
  if (options_.enable_wal) {
    lsm_options.persist_manifest = true;
    lsm_options.on_flush = [this](const Slice& user_key, const Slice& value) {
      // §3.3: when a KV reaches level 0, log a flush mark with the chunk's
      // embedded sequence id so earlier WAL records become purgeable.
      uint64_t chunk_seq = 0;
      Slice payload = lsm::ChunkValuePayload(value);
      if (GetVarint64(&payload, &chunk_seq)) {
        WalRecord mark;
        mark.type = WalRecordType::kFlushMark;
        mark.id = lsm::ChunkKeyId(user_key);
        mark.seq = chunk_seq;
        wal_->Append(mark);
      }
    };
  }
  auto time_lsm = std::make_unique<lsm::TimePartitionedLsm>(
      env_.get(), "lsm", lsm_options, block_cache_.get());
  time_lsm_ = time_lsm.get();
  lsm_ = std::move(time_lsm);
  Status open_status;
  if (options_.enable_wal) {
    wal_ = std::make_unique<WalWriter>(&env_->fast(), "WAL");
    TU_RETURN_IF_ERROR(wal_->Open());
    TU_RETURN_IF_ERROR(lsm_->Open());
    open_status = RecoverFromWal();
  } else {
    open_status = lsm_->Open();
  }
  TU_RETURN_IF_ERROR(open_status);
  return StartMaintenance();
}

Status TimeUnionDB::StartMaintenance() {
  if (!options_.background_maintenance) return Status::OK();
  MaintenanceOptions mopts;
  mopts.interval_ms = options_.maintenance_interval_ms;
  mopts.retention_ms = options_.retention_ms;
  mopts.advise_memory_release = true;
  mopts.now = options_.maintenance_clock;
  maintenance_ = std::make_unique<MaintenanceWorker>(
      std::move(mopts), [this](int64_t watermark) {
        if (watermark != INT64_MIN) ApplyRetention(watermark);
        // Heal after a slow-tier outage: upload deferred L2 tables parked
        // on the fast tier. Cheap when nothing is deferred or the breaker
        // is still open; its first attempt doubles as the breaker's
        // half-open probe, so recovery needs no operator action.
        if (time_lsm_) time_lsm_->DrainDeferredUploads();
        if (wal_) wal_->Purge();
        AdviseMemoryRelease();
      });
  maintenance_->Start();
  return Status::OK();
}

Status TimeUnionDB::MaybeLog(const WalRecord& record) {
  if (!wal_) return Status::OK();
  // The WAL is the one serialized append point of the write path; the
  // writer's internal mutex orders records, so inserts hold no DB-wide
  // lock here.
  TU_RETURN_IF_ERROR(wal_->Append(record));
  // Inline purge with hysteresis: a purge can only drop records whose
  // chunks already reached level 0, so when most of the log is still
  // live, purging at a fixed size threshold degenerates into rewriting
  // the whole log on every append. Only purge once the log has doubled
  // past the last purge's result; try_lock skips if a purge is running.
  const uint64_t written = wal_->bytes_written();
  if (written > options_.wal_purge_bytes &&
      written > 2 * wal_post_purge_bytes_.load(std::memory_order_relaxed)) {
    std::unique_lock<std::mutex> purge_lock(wal_purge_mu_, std::try_to_lock);
    if (purge_lock.owns_lock()) {
      TU_RETURN_IF_ERROR(wal_->Purge());
      wal_post_purge_bytes_.store(wal_->bytes_written(),
                                  std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

Status TimeUnionDB::RecoverFromWal() {
  recovery_report_ = RecoveryReport{};
  // Pass 1: newest flush mark per id — samples at or below it are already
  // safe in the (manifest-recovered) LSM.
  std::map<uint64_t, uint64_t> flushed;
  TU_RETURN_IF_ERROR(
      ReplayWal(&env_->fast(), "WAL", [&](const WalRecord& r) -> Status {
        if (r.type == WalRecordType::kFlushMark) {
          flushed[r.id] = std::max(flushed[r.id], r.seq);
        }
        return Status::OK();
      }));

  // Pass 2: rebuild registries, heads and unflushed samples. WAL logging
  // is suppressed during replay by temporarily detaching the writer.
  // Replay is single-threaded (maintenance has not started), but takes the
  // normal locks so the code stays valid under any future overlap.
  auto saved_wal = std::move(wal_);
  WalReplayStats replay_stats;
  Status replay_status =
      ReplayWal(&env_->fast(), "WAL", [&](const WalRecord& r) -> Status {
        switch (r.type) {
          case WalRecordType::kRegisterSeries: {
            std::lock_guard<std::mutex> reg_lock(reg_mu_);
            const std::string key = index::LabelsKey(r.labels);
            uint64_t existing = 0;
            if (LookupSeriesRef(key, &existing)) return Status::OK();
            uint64_t tag_offset = 0;
            TU_RETURN_IF_ERROR(tag_store_->Append(r.labels, &tag_offset));
            TU_RETURN_IF_ERROR(index_->Add(r.id, r.labels));
            SeriesEntry entry;
            entry.head = std::make_unique<mem::SeriesHead>(
                r.id, tag_offset, series_chunks_.get(),
                options_.samples_per_chunk);
            entry.labels = r.labels;
            {
              EntryShard& es = EntryShardFor(r.id);
              std::unique_lock<std::shared_mutex> lock(es.mu);
              es.series.emplace(r.id, std::move(entry));
            }
            {
              KeyShard& ks = KeyShardFor(key);
              std::unique_lock<std::shared_mutex> lock(ks.mu);
              ks.series_by_key[key] = r.id;
            }
            next_id_ = std::max(next_id_, r.id + 1);
            return Status::OK();
          }
          case WalRecordType::kRegisterGroup: {
            std::lock_guard<std::mutex> reg_lock(reg_mu_);
            const std::string key = index::LabelsKey(r.labels);
            uint64_t existing = 0;
            if (LookupGroupRef(key, &existing)) return Status::OK();
            uint64_t tag_offset = 0;
            TU_RETURN_IF_ERROR(tag_store_->Append(r.labels, &tag_offset));
            TU_RETURN_IF_ERROR(index_->Add(r.id, r.labels));
            GroupEntry entry;
            entry.head = std::make_unique<mem::GroupHead>(
                r.id, tag_offset, group_ts_chunks_.get(),
                group_val_chunks_.get(), options_.samples_per_chunk);
            entry.group_labels = r.labels;
            {
              EntryShard& es = EntryShardFor(r.id);
              std::unique_lock<std::shared_mutex> lock(es.mu);
              es.groups.emplace(r.id, std::move(entry));
            }
            {
              KeyShard& ks = KeyShardFor(key);
              std::unique_lock<std::shared_mutex> lock(ks.mu);
              ks.group_by_key[key] = r.id;
            }
            next_id_ = std::max(next_id_, r.id + 1);
            return Status::OK();
          }
          case WalRecordType::kRegisterMember: {
            std::lock_guard<std::mutex> reg_lock(reg_mu_);
            EntryShard& es = EntryShardFor(r.id);
            std::shared_lock<std::shared_mutex> shard_lock(es.mu);
            auto it = es.groups.find(r.id);
            if (it == es.groups.end()) {
              return Status::Corruption("wal member before group");
            }
            GroupEntry& entry = it->second;
            std::lock_guard<std::mutex> entry_lock(append_locks_.For(r.id));
            const std::string key = index::LabelsKey(r.labels);
            if (entry.head->FindMember(key) >= 0) return Status::OK();
            uint64_t tag_offset = 0;
            TU_RETURN_IF_ERROR(tag_store_->Append(r.labels, &tag_offset));
            TU_RETURN_IF_ERROR(index_->Add(r.id, r.labels));
            uint32_t slot = 0;
            TU_RETURN_IF_ERROR(entry.head->AddMember(tag_offset, key, &slot));
            entry.member_labels.resize(
                std::max<size_t>(entry.member_labels.size(), slot + 1));
            entry.member_labels[slot] = r.labels;
            return Status::OK();
          }
          case WalRecordType::kSample: {
            auto it = flushed.find(r.id);
            if (it != flushed.end() && r.seq <= it->second) return Status::OK();
            EntryShard& es = EntryShardFor(r.id);
            std::shared_lock<std::shared_mutex> shard_lock(es.mu);
            auto found = es.series.find(r.id);
            if (found == es.series.end()) {
              return Status::Corruption("wal sample before register");
            }
            std::lock_guard<std::mutex> entry_lock(append_locks_.For(r.id));
            return AppendToSeries(&found->second, r.ts, r.value);
          }
          case WalRecordType::kGroupSample: {
            auto it = flushed.find(r.id);
            if (it != flushed.end() && r.seq <= it->second) return Status::OK();
            EntryShard& es = EntryShardFor(r.id);
            std::shared_lock<std::shared_mutex> shard_lock(es.mu);
            auto found = es.groups.find(r.id);
            if (found == es.groups.end()) {
              return Status::Corruption("wal group sample before register");
            }
            std::lock_guard<std::mutex> entry_lock(append_locks_.For(r.id));
            return AppendRowToGroup(&found->second, r.slots, r.ts, r.values);
          }
          case WalRecordType::kFlushMark:
            return Status::OK();
        }
        return Status::OK();
      },
      &replay_stats);
  wal_ = std::move(saved_wal);
  recovery_report_.wal = replay_stats;
  if (time_lsm_ != nullptr) {
    recovery_report_.tables_quarantined =
        time_lsm_->stats().tables_quarantined.load(std::memory_order_relaxed);
    recovery_report_.orphans_swept =
        time_lsm_->stats().orphans_swept.load(std::memory_order_relaxed);
  }
  if (!replay_stats.Clean() || recovery_report_.tables_quarantined > 0) {
    std::fprintf(stderr, "[timeunion_db] recovery: wal %s, quarantined=%llu\n",
                 replay_stats.ToString().c_str(),
                 static_cast<unsigned long long>(
                     recovery_report_.tables_quarantined));
  }
  return replay_status;
}

Status TimeUnionDB::SyncWal() {
  if (!wal_) return Status::OK();
  return wal_->Sync();
}

// ---------------------------------------------------------------------------
// Registry lookups and slow-path registration
// ---------------------------------------------------------------------------

bool TimeUnionDB::LookupSeriesRef(const std::string& key,
                                  uint64_t* ref) const {
  KeyShard& ks = KeyShardFor(key);
  std::shared_lock<std::shared_mutex> lock(ks.mu);
  auto it = ks.series_by_key.find(key);
  if (it == ks.series_by_key.end()) return false;
  *ref = it->second;
  return true;
}

bool TimeUnionDB::LookupGroupRef(const std::string& key, uint64_t* ref) const {
  KeyShard& ks = KeyShardFor(key);
  std::shared_lock<std::shared_mutex> lock(ks.mu);
  auto it = ks.group_by_key.find(key);
  if (it == ks.group_by_key.end()) return false;
  *ref = it->second;
  return true;
}

Status TimeUnionDB::RegisterSeriesSlow(const Labels& sorted,
                                       const std::string& key,
                                       uint64_t* series_ref) {
  // Double-check under reg_mu_: another registrar may have won the race
  // between the caller's lock-free lookup and this point.
  if (LookupSeriesRef(key, series_ref)) return Status::OK();

  const uint64_t id = next_id_++;
  uint64_t tag_offset = 0;
  TU_RETURN_IF_ERROR(tag_store_->Append(sorted, &tag_offset));
  TU_RETURN_IF_ERROR(index_->Add(id, sorted));

  SeriesEntry fresh;
  fresh.head = std::make_unique<mem::SeriesHead>(
      id, tag_offset, series_chunks_.get(), options_.samples_per_chunk);
  fresh.labels = sorted;
  // Publish the entry before the key mapping, so a ref resolved through
  // the key map always finds its entry.
  {
    EntryShard& es = EntryShardFor(id);
    std::unique_lock<std::shared_mutex> lock(es.mu);
    es.series.emplace(id, std::move(fresh));
  }
  {
    KeyShard& ks = KeyShardFor(key);
    std::unique_lock<std::shared_mutex> lock(ks.mu);
    ks.series_by_key[key] = id;
  }
  *series_ref = id;

  const int64_t bytes =
      static_cast<int64_t>(key.size() + sizeof(SeriesEntry) + 64);
  registry_bytes_ += bytes;
  MemoryTracker::Global().Add(MemCategory::kTags, bytes);

  WalRecord reg;
  reg.type = WalRecordType::kRegisterSeries;
  reg.id = id;
  reg.labels = sorted;
  return MaybeLog(reg);
}

Status TimeUnionDB::RegisterGroupSlow(const Labels& sorted_group,
                                      const std::string& group_key,
                                      uint64_t* group_ref) {
  if (LookupGroupRef(group_key, group_ref)) return Status::OK();

  const uint64_t id = next_id_++;
  uint64_t tag_offset = 0;
  TU_RETURN_IF_ERROR(tag_store_->Append(sorted_group, &tag_offset));
  // Group tags are indexed once with the group ID as postings ID (§3.1).
  TU_RETURN_IF_ERROR(index_->Add(id, sorted_group));

  GroupEntry fresh;
  fresh.head = std::make_unique<mem::GroupHead>(
      id, tag_offset, group_ts_chunks_.get(), group_val_chunks_.get(),
      options_.samples_per_chunk);
  fresh.group_labels = sorted_group;
  {
    EntryShard& es = EntryShardFor(id);
    std::unique_lock<std::shared_mutex> lock(es.mu);
    es.groups.emplace(id, std::move(fresh));
  }
  {
    KeyShard& ks = KeyShardFor(group_key);
    std::unique_lock<std::shared_mutex> lock(ks.mu);
    ks.group_by_key[group_key] = id;
  }
  *group_ref = id;

  const int64_t bytes =
      static_cast<int64_t>(group_key.size() + sizeof(GroupEntry) + 64);
  registry_bytes_ += bytes;
  MemoryTracker::Global().Add(MemCategory::kTags, bytes);

  WalRecord reg;
  reg.type = WalRecordType::kRegisterGroup;
  reg.id = id;
  reg.labels = sorted_group;
  return MaybeLog(reg);
}

Status TimeUnionDB::RegisterSeries(const Labels& labels,
                                   uint64_t* series_ref) {
  Labels sorted = labels;
  index::SortLabels(&sorted);
  const std::string key = index::LabelsKey(sorted);
  if (LookupSeriesRef(key, series_ref)) return Status::OK();
  std::lock_guard<std::mutex> reg_lock(reg_mu_);
  return RegisterSeriesSlow(sorted, key, series_ref);
}

// ---------------------------------------------------------------------------
// Write paths
// ---------------------------------------------------------------------------

Status TimeUnionDB::FlushSeriesChunk(mem::SeriesHead* head, bool* flushed) {
  std::string payload;
  int64_t first_ts = 0;
  *flushed = head->CloseChunk(&payload, &first_ts);
  if (!*flushed) return Status::OK();
  return lsm_->Put(
      lsm::MakeChunkKey(head->id(), first_ts),
      lsm::MakeChunkValue(lsm::ChunkType::kSeries, payload));
}

Status TimeUnionDB::FlushGroupChunk(GroupEntry* entry, bool* flushed) {
  std::string payload;
  int64_t first_ts = 0;
  *flushed = entry->head->CloseChunk(&payload, &first_ts);
  if (!*flushed) return Status::OK();
  return lsm_->Put(
      lsm::MakeChunkKey(entry->head->id(), first_ts),
      lsm::MakeChunkValue(lsm::ChunkType::kGroup, payload));
}

Status TimeUnionDB::AppendToSeries(SeriesEntry* entry, int64_t ts,
                                   double value) {
  mem::SeriesHead* head = entry->head.get();
  for (int attempt = 0; attempt < 3; ++attempt) {
    const int64_t partition_end = lsm_->PartitionEndFor(ts);
    mem::AppendResult result;
    bool too_old = false;
    TU_RETURN_IF_ERROR(
        head->Append(ts, value, partition_end, &result, &too_old));
    if (too_old) {
      // §3.1 case 4: older than the open chunk — route straight to the
      // LSM as a single-sample chunk; the tree's time partitions place it.
      std::string payload;
      compress::EncodeSeriesChunk(head->seq_id(), {Sample{ts, value}},
                                  &payload);
      return lsm_->Put(
          lsm::MakeChunkKey(head->id(), ts),
          lsm::MakeChunkValue(lsm::ChunkType::kSeries, payload));
    }
    switch (result) {
      case mem::AppendResult::kOk:
      case mem::AppendResult::kDuplicate:
        return Status::OK();
      case mem::AppendResult::kChunkClosed: {
        bool flushed = false;
        return FlushSeriesChunk(head, &flushed);
      }
      case mem::AppendResult::kNeedsFlush: {
        bool flushed = false;
        TU_RETURN_IF_ERROR(FlushSeriesChunk(head, &flushed));
        continue;  // retry the append on a fresh chunk
      }
    }
  }
  return Status::Corruption("series append did not converge");
}

Status TimeUnionDB::AdmitWrite() {
  const DBOptions::AdmissionControl& ac = options_.admission;
  if (!ac.enabled || time_lsm_ == nullptr) return Status::OK();
  const uint64_t limit = options_.lsm.fast_storage_limit_bytes;
  if (limit == 0) return Status::OK();

  // One relaxed load per write; the gauge itself is re-read only every
  // refresh_every_ops admissions so pressure transitions lag by at most
  // one small batch.
  const uint64_t op = admission_ops_.fetch_add(1, std::memory_order_relaxed);
  if (ac.refresh_every_ops <= 1 || op % ac.refresh_every_ops == 0) {
    const uint64_t fast_bytes = time_lsm_->FastBytesGauge();
    const auto hard =
        static_cast<uint64_t>(ac.hard_watermark * static_cast<double>(limit));
    const auto soft =
        static_cast<uint64_t>(ac.soft_watermark * static_cast<double>(limit));
    int level = 0;
    if (fast_bytes >= hard) {
      level = 2;
    } else if (fast_bytes >= soft) {
      level = 1;
    }
    admission_level_.store(level, std::memory_order_relaxed);
  }

  switch (admission_level_.load(std::memory_order_relaxed)) {
    case 2:
      writes_rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "fast tier over hard watermark; write rejected");
    case 1:
      // Bounded delay, not a queue: the writer eats a fixed pause so
      // ingest slows toward the drain rate without unbounded blocking.
      writers_delayed_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(ac.soft_delay_us));
      return Status::OK();
    default:
      return Status::OK();
  }
}

Status TimeUnionDB::AppendSampleByRef(uint64_t series_ref, int64_t ts,
                                      double value) {
  TU_RETURN_IF_ERROR(AdmitWrite());
  EntryShard& es = EntryShardFor(series_ref);
  std::shared_lock<std::shared_mutex> shard_lock(es.mu);
  auto it = es.series.find(series_ref);
  if (it == es.series.end()) {
    return Status::NotFound("unknown series reference");
  }
  // The entry lock serializes the head mutation and keeps the WAL record's
  // seq consistent with the append it logs.
  std::lock_guard<std::mutex> entry_lock(append_locks_.For(series_ref));
  TU_RETURN_IF_ERROR(AppendToSeries(&it->second, ts, value));
  if (wal_) {
    WalRecord rec;
    rec.type = WalRecordType::kSample;
    rec.id = series_ref;
    rec.seq = it->second.head->seq_id();
    rec.ts = ts;
    rec.value = value;
    TU_RETURN_IF_ERROR(MaybeLog(rec));
  }
  return Status::OK();
}

Status TimeUnionDB::Insert(const Labels& labels, int64_t ts, double value,
                           uint64_t* series_ref) {
  Labels sorted = labels;
  index::SortLabels(&sorted);
  const std::string key = index::LabelsKey(sorted);
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!LookupSeriesRef(key, series_ref)) {
      std::lock_guard<std::mutex> reg_lock(reg_mu_);
      TU_RETURN_IF_ERROR(RegisterSeriesSlow(sorted, key, series_ref));
    }
    Status s = AppendSampleByRef(*series_ref, ts, value);
    // NotFound: retention retired the entry between lookup and append (it
    // removed the key mapping too) — re-register and retry once.
    if (!s.IsNotFound()) return s;
  }
  return Status::NotFound("series retired during insert");
}

Status TimeUnionDB::InsertFast(uint64_t series_ref, int64_t ts, double value) {
  return AppendSampleByRef(series_ref, ts, value);
}

Status TimeUnionDB::AppendRowToGroup(GroupEntry* entry,
                                     const std::vector<uint32_t>& slots,
                                     int64_t ts,
                                     const std::vector<double>& values) {
  mem::GroupHead* head = entry->head.get();
  for (int attempt = 0; attempt < 3; ++attempt) {
    const int64_t partition_end = lsm_->PartitionEndFor(ts);
    mem::AppendResult result;
    bool too_old = false;
    TU_RETURN_IF_ERROR(head->InsertRow(ts, slots, values, partition_end,
                                       &result, &too_old));
    if (too_old) {
      // Single-row group chunk straight into the LSM.
      std::vector<compress::GroupRow> rows(1);
      rows[0].timestamp = ts;
      rows[0].values.resize(head->num_members());
      for (size_t i = 0; i < slots.size(); ++i) {
        rows[0].values[slots[i]] = values[i];
      }
      std::string payload;
      compress::EncodeGroupChunk(head->seq_id(),
                                 static_cast<uint32_t>(head->num_members()),
                                 rows, &payload);
      return lsm_->Put(lsm::MakeChunkKey(head->id(), ts),
                       lsm::MakeChunkValue(lsm::ChunkType::kGroup, payload));
    }
    switch (result) {
      case mem::AppendResult::kOk:
      case mem::AppendResult::kDuplicate:
        return Status::OK();
      case mem::AppendResult::kChunkClosed: {
        bool flushed = false;
        return FlushGroupChunk(entry, &flushed);
      }
      case mem::AppendResult::kNeedsFlush: {
        bool flushed = false;
        TU_RETURN_IF_ERROR(FlushGroupChunk(entry, &flushed));
        continue;
      }
    }
  }
  return Status::Corruption("group append did not converge");
}

Status TimeUnionDB::InsertGroup(const Labels& group_tags,
                                const std::vector<Labels>& member_tags,
                                int64_t ts, const std::vector<double>& values,
                                uint64_t* group_ref,
                                std::vector<uint32_t>* slots) {
  if (member_tags.size() != values.size()) {
    return Status::InvalidArgument("member/value count mismatch");
  }
  TU_RETURN_IF_ERROR(AdmitWrite());
  Labels sorted_group = group_tags;
  index::SortLabels(&sorted_group);
  const std::string group_key = index::LabelsKey(sorted_group);

  // Member resolution may register new members (index/tag-store writes),
  // so the whole slow path serializes behind the registration mutex; the
  // fast path (InsertGroupFast) never takes it.
  std::lock_guard<std::mutex> reg_lock(reg_mu_);
  if (!LookupGroupRef(group_key, group_ref)) {
    TU_RETURN_IF_ERROR(RegisterGroupSlow(sorted_group, group_key, group_ref));
  }

  EntryShard& es = EntryShardFor(*group_ref);
  std::shared_lock<std::shared_mutex> shard_lock(es.mu);
  auto git = es.groups.find(*group_ref);
  if (git == es.groups.end()) {
    // Cannot happen while reg_mu_ is held (retention also serializes on it).
    return Status::NotFound("group retired during insert");
  }
  GroupEntry* entry = &git->second;
  std::lock_guard<std::mutex> entry_lock(append_locks_.For(*group_ref));

  // Resolve/append members (§3.4: an appending array ordered by first
  // insertion; lookups check whether the timeseries is already recorded).
  slots->clear();
  slots->reserve(member_tags.size());
  for (const Labels& tags : member_tags) {
    Labels sorted = tags;
    index::SortLabels(&sorted);
    const std::string key = index::LabelsKey(sorted);
    int slot = entry->head->FindMember(key);
    if (slot < 0) {
      uint64_t tag_offset = 0;
      TU_RETURN_IF_ERROR(tag_store_->Append(sorted, &tag_offset));
      // Member unique tags also map to the group ID in the first-level
      // index.
      TU_RETURN_IF_ERROR(index_->Add(*group_ref, sorted));
      uint32_t new_slot = 0;
      TU_RETURN_IF_ERROR(entry->head->AddMember(tag_offset, key, &new_slot));
      entry->member_labels.resize(
          std::max<size_t>(entry->member_labels.size(), new_slot + 1));
      entry->member_labels[new_slot] = sorted;
      slot = static_cast<int>(new_slot);

      WalRecord reg;
      reg.type = WalRecordType::kRegisterMember;
      reg.id = *group_ref;
      reg.slot = new_slot;
      reg.labels = sorted;
      TU_RETURN_IF_ERROR(MaybeLog(reg));
    }
    slots->push_back(static_cast<uint32_t>(slot));
  }

  TU_RETURN_IF_ERROR(AppendRowToGroup(entry, *slots, ts, values));
  if (wal_) {
    WalRecord rec;
    rec.type = WalRecordType::kGroupSample;
    rec.id = *group_ref;
    rec.seq = entry->head->seq_id();
    rec.ts = ts;
    rec.slots = *slots;
    rec.values = values;
    TU_RETURN_IF_ERROR(MaybeLog(rec));
  }
  return Status::OK();
}

Status TimeUnionDB::InsertGroupFast(uint64_t group_ref,
                                    const std::vector<uint32_t>& slots,
                                    int64_t ts,
                                    const std::vector<double>& values) {
  if (slots.size() != values.size()) {
    return Status::InvalidArgument("slot/value count mismatch");
  }
  TU_RETURN_IF_ERROR(AdmitWrite());
  EntryShard& es = EntryShardFor(group_ref);
  std::shared_lock<std::shared_mutex> shard_lock(es.mu);
  auto it = es.groups.find(group_ref);
  if (it == es.groups.end()) {
    return Status::NotFound("unknown group reference");
  }
  // Slot validation under the entry lock: InsertGroup may grow the member
  // array concurrently.
  std::lock_guard<std::mutex> entry_lock(append_locks_.For(group_ref));
  for (uint32_t slot : slots) {
    if (slot >= it->second.head->num_members()) {
      return Status::InvalidArgument("member slot out of range");
    }
  }
  TU_RETURN_IF_ERROR(AppendRowToGroup(&it->second, slots, ts, values));
  if (wal_) {
    WalRecord rec;
    rec.type = WalRecordType::kGroupSample;
    rec.id = group_ref;
    rec.seq = it->second.head->seq_id();
    rec.ts = ts;
    rec.slots = slots;
    rec.values = values;
    TU_RETURN_IF_ERROR(MaybeLog(rec));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Query path
// ---------------------------------------------------------------------------

namespace {

bool MatcherMatches(const TagMatcher& m, const Labels& labels) {
  for (const Label& l : labels) {
    if (l.name != m.name) continue;
    if (m.type == TagMatcher::Type::kEqual) return l.value == m.value;
    try {
      return std::regex_match(l.value, std::regex(m.value));
    } catch (const std::regex_error&) {
      return false;
    }
  }
  return false;
}

/// Shared input validation of the two public query entry points.
Status ValidateQueryArgs(const std::vector<TagMatcher>& matchers, int64_t t0,
                         int64_t t1) {
  if (t0 > t1) return Status::InvalidArgument("query time range: t0 > t1");
  if (matchers.empty()) {
    return Status::InvalidArgument("query requires at least one tag matcher");
  }
  return Status::OK();
}

/// Clamps per-table gap spans to [t0, t1] and coalesces overlaps into the
/// caller-facing missing-range list.
void FinalizeMissing(int64_t t0, int64_t t1,
                     std::vector<std::pair<int64_t, int64_t>>* missing) {
  for (auto& iv : *missing) {
    iv.first = std::max(iv.first, t0);
    iv.second = std::min(iv.second, t1);
  }
  util::MergeIntervals(missing);
}

}  // namespace

Status TimeUnionDB::QueryIteratorsImpl(const std::vector<TagMatcher>& matchers,
                                       int64_t t0, int64_t t1,
                                       std::vector<SeriesIterResult>* out,
                                       query::QueryStats* stats) {
  out->clear();

  index::Postings ids;
  TU_RETURN_IF_ERROR(index_->Select(matchers, &ids));
  const int64_t slack = options_.lsm.partition_upper_bound_ms;

  struct IterSnapshot {
    Labels labels;
    std::vector<Sample> open;
    int member_slot = -1;
  };

  for (uint64_t id : ids) {
    // Snapshot the entry under its shard/entry locks: labels plus the
    // range-filtered open chunk. The LSM read below then runs without any
    // DB lock — anything flushed before the snapshot is already in the
    // LSM, and a flush racing us lands in both sources and dedups by seq
    // inside MergedSeriesIterator.
    EntryShard& es = EntryShardFor(id);
    std::vector<IterSnapshot> snaps;
    {
      std::shared_lock<std::shared_mutex> shard_lock(es.mu);
      auto series_it = es.series.find(id);
      if (series_it != es.series.end()) {
        IterSnapshot snap;
        snap.labels = series_it->second.labels;
        std::lock_guard<std::mutex> entry_lock(append_locks_.For(id));
        TU_RETURN_IF_ERROR(
            series_it->second.head->SnapshotOpen(t0, t1, &snap.open));
        snaps.push_back(std::move(snap));
      } else {
        auto group_it = es.groups.find(id);
        if (group_it == es.groups.end()) continue;  // retired id

        // Second level of indexing (§2.4 challenge 3): locate the members
        // of this group that themselves satisfy every matcher against the
        // union of group tags and member unique tags.
        GroupEntry& entry = group_it->second;
        std::lock_guard<std::mutex> entry_lock(append_locks_.For(id));
        for (uint32_t slot = 0; slot < entry.head->num_members(); ++slot) {
          Labels full = entry.group_labels;
          full.insert(full.end(), entry.member_labels[slot].begin(),
                      entry.member_labels[slot].end());
          bool all_match = true;
          for (const TagMatcher& m : matchers) {
            if (!MatcherMatches(m, full)) {
              all_match = false;
              break;
            }
          }
          if (!all_match) continue;
          IterSnapshot snap;
          index::SortLabels(&full);
          snap.labels = std::move(full);
          snap.member_slot = static_cast<int>(slot);
          TU_RETURN_IF_ERROR(
              entry.head->SnapshotMember(slot, t0, t1, &snap.open));
          snaps.push_back(std::move(snap));
        }
      }
    }

    // Create the LSM iterators after the head snapshots: a chunk flushed
    // in between is visible to the (younger) iterator and dedups against
    // the snapshot inside MergedSeriesIterator.
    for (IterSnapshot& snap : snaps) {
      // Degraded reads: each iterator reports its own gap spans, clamped
      // and merged, so streaming consumers know what the stream may lack.
      std::vector<std::pair<int64_t, int64_t>> missing;
      query::ReadContext ctx;
      ctx.t0 = t0;
      ctx.t1 = t1;
      ctx.matchers = &matchers;
      ctx.scope.allow_partial = !options_.strict_reads;
      ctx.scope.missing = options_.strict_reads ? nullptr : &missing;
      ctx.stats = stats;
      std::unique_ptr<lsm::Iterator> lsm_iter;
      TU_RETURN_IF_ERROR(lsm_->NewIteratorForId(id, ctx, &lsm_iter));
      SeriesIterResult result;
      result.id = id;
      result.labels = std::move(snap.labels);
      result.iter = std::make_unique<SampleIterator>(
          id, ctx, std::move(lsm_iter), std::move(snap.open),
          snap.member_slot, slack);
      if (!missing.empty()) {
        FinalizeMissing(t0, t1, &missing);
        if (!missing.empty()) {
          result.complete = false;
          result.missing_ranges = std::move(missing);
        }
      }
      out->push_back(std::move(result));
    }
  }
  return Status::OK();
}

void TimeUnionDB::AddQueryTotals(const query::QueryStats& stats) {
  std::lock_guard<std::mutex> lock(query_totals_mu_);
  query_totals_.Add(stats);
  ++queries_run_;
}

Status TimeUnionDB::Query(const std::vector<TagMatcher>& matchers, int64_t t0,
                          int64_t t1, QueryResult* out) {
  out->clear();
  TU_RETURN_IF_ERROR(ValidateQueryArgs(matchers, t0, t1));

  // Query is a thin materializer over the iterator pipeline: build the
  // per-series merged streams, drain each into a vector, union the gap
  // spans. `out->stats` outlives the iterators (both are scoped here), so
  // drain-time counters (block reads, cache hits, decodes) land in it too.
  std::vector<SeriesIterResult> iters;
  TU_RETURN_IF_ERROR(
      QueryIteratorsImpl(matchers, t0, t1, &iters, &out->stats));

  std::vector<std::pair<int64_t, int64_t>> missing;
  for (SeriesIterResult& r : iters) {
    SeriesResult result;
    result.id = r.id;
    result.labels = std::move(r.labels);
    for (SampleIterator* it = r.iter.get(); it->Valid(); it->Next()) {
      result.samples.push_back(it->value());
    }
    TU_RETURN_IF_ERROR(r.iter->status());
    if (!r.complete) {
      missing.insert(missing.end(), r.missing_ranges.begin(),
                     r.missing_ranges.end());
    }
    if (!result.samples.empty()) out->push_back(std::move(result));
  }

  if (!missing.empty()) {
    // Per-iterator spans are already clamped; a second merge unions them
    // across series.
    util::MergeIntervals(&missing);
    if (!missing.empty()) {
      out->complete = false;
      out->missing_ranges = std::move(missing);
    }
  }
  AddQueryTotals(out->stats);
  return Status::OK();
}

Status TimeUnionDB::QueryIterators(const std::vector<TagMatcher>& matchers,
                                   int64_t t0, int64_t t1,
                                   std::vector<SeriesIterResult>* out,
                                   query::QueryStats* stats) {
  TU_RETURN_IF_ERROR(ValidateQueryArgs(matchers, t0, t1));
  TU_RETURN_IF_ERROR(QueryIteratorsImpl(matchers, t0, t1, out, stats));
  // DB-lifetime totals for streaming queries capture the creation-time
  // counters (table/partition pruning); counters that accrue while the
  // caller drains the lazy iterators land only in `stats`.
  AddQueryTotals(stats != nullptr ? *stats : query::QueryStats());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Maintenance
// ---------------------------------------------------------------------------

Status TimeUnionDB::ListTagValues(const std::string& tag_name,
                                  std::vector<std::string>* values) const {
  // The index is internally synchronized, but a slow-path insert touches
  // it once per label; serializing against registration gives this API an
  // insert-atomic view of multi-label series.
  std::lock_guard<std::mutex> reg_lock(reg_mu_);
  return index_->TagValues(tag_name, values);
}

Status TimeUnionDB::Flush() {
  for (uint32_t shard = 0; shard <= shard_mask_; ++shard) {
    EntryShard& es = entry_shards_[shard];
    std::shared_lock<std::shared_mutex> shard_lock(es.mu);
    for (auto& [id, entry] : es.series) {
      std::lock_guard<std::mutex> entry_lock(append_locks_.For(id));
      bool flushed = false;
      TU_RETURN_IF_ERROR(FlushSeriesChunk(entry.head.get(), &flushed));
    }
    for (auto& [id, entry] : es.groups) {
      std::lock_guard<std::mutex> entry_lock(append_locks_.For(id));
      bool flushed = false;
      TU_RETURN_IF_ERROR(FlushGroupChunk(&entry, &flushed));
    }
  }
  TU_RETURN_IF_ERROR(lsm_->FlushAll());
  if (wal_) {
    TU_RETURN_IF_ERROR(wal_->Sync());
  }
  return Status::OK();
}

Status TimeUnionDB::ApplyRetention(int64_t watermark) {
  // Retention unlinks registry entries and mutates the index, so it
  // serializes with registration; appenders are only excluded per shard
  // while that shard's dead entries are erased.
  std::lock_guard<std::mutex> reg_lock(reg_mu_);
  TU_RETURN_IF_ERROR(lsm_->ApplyRetention(watermark));

  // Purge memory objects whose newest sample is older than the watermark
  // (§3.3 data retention).
  for (uint32_t shard = 0; shard <= shard_mask_; ++shard) {
    EntryShard& es = entry_shards_[shard];
    std::unique_lock<std::shared_mutex> shard_lock(es.mu);
    for (auto it = es.series.begin(); it != es.series.end();) {
      // Never-written heads report last_ts == INT64_MIN; skip them so a
      // freshly registered ref can't be retired before its first append.
      if (it->second.head->last_ts() != INT64_MIN &&
          it->second.head->last_ts() < watermark) {
        TU_RETURN_IF_ERROR(index_->Remove(it->first, it->second.labels));
        const std::string key = index::LabelsKey(it->second.labels);
        {
          KeyShard& ks = KeyShardFor(key);
          std::unique_lock<std::shared_mutex> key_lock(ks.mu);
          ks.series_by_key.erase(key);
        }
        it = es.series.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = es.groups.begin(); it != es.groups.end();) {
      if (it->second.head->last_ts() != INT64_MIN &&
          it->second.head->last_ts() < watermark) {
        TU_RETURN_IF_ERROR(index_->Remove(it->first, it->second.group_labels));
        for (const Labels& member : it->second.member_labels) {
          TU_RETURN_IF_ERROR(index_->Remove(it->first, member));
        }
        const std::string key = index::LabelsKey(it->second.group_labels);
        {
          KeyShard& ks = KeyShardFor(key);
          std::unique_lock<std::shared_mutex> key_lock(ks.mu);
          ks.group_by_key.erase(key);
        }
        it = es.groups.erase(it);
      } else {
        ++it;
      }
    }
  }
  return Status::OK();
}

uint64_t TimeUnionDB::NumSeries() const {
  uint64_t total = 0;
  for (uint32_t shard = 0; shard <= shard_mask_; ++shard) {
    EntryShard& es = entry_shards_[shard];
    std::shared_lock<std::shared_mutex> lock(es.mu);
    total += es.series.size();
  }
  return total;
}

uint64_t TimeUnionDB::NumGroups() const {
  uint64_t total = 0;
  for (uint32_t shard = 0; shard <= shard_mask_; ++shard) {
    EntryShard& es = entry_shards_[shard];
    std::shared_lock<std::shared_mutex> lock(es.mu);
    total += es.groups.size();
  }
  return total;
}

uint64_t TimeUnionDB::IndexMemoryUsage() const { return index_->MemoryUsage(); }

core::HealthReport TimeUnionDB::HealthReport() const {
  core::HealthReport r;
  const cloud::ObjectStore& slow = env_->slow();
  const cloud::CircuitBreaker& breaker = slow.breaker();
  r.breaker_enabled = breaker.enabled();
  r.slow_breaker = breaker.state();
  r.breaker_rejections = breaker.rejections();
  r.breaker_opens = breaker.opens();
  if (time_lsm_ != nullptr) {
    r.deferred_tables = time_lsm_->NumDeferredTables();
    r.deferred_bytes = time_lsm_->DeferredBytes();
    r.deferred_uploads_drained = time_lsm_->stats().deferred_uploads_drained
                                     .load(std::memory_order_relaxed);
    r.fast_bytes = time_lsm_->FastBytesGauge();
    r.fast_limit_bytes = options_.lsm.fast_storage_limit_bytes;
    r.last_background_error = time_lsm_->last_background_error();
  }
  r.writers_delayed = writers_delayed_.load(std::memory_order_relaxed);
  r.writes_rejected = writes_rejected_.load(std::memory_order_relaxed);
  if (block_cache_ != nullptr) {
    r.block_cache_enabled = true;
    r.block_cache_usage = block_cache_->usage();
    r.block_cache_hits = block_cache_->hits();
    r.block_cache_misses = block_cache_->misses();
    r.block_cache_evictions = block_cache_->evictions();
  }
  return r;
}

std::string TimeUnionDB::CountersReport() const {
  std::string report = env_->CountersReport();
  char buf[512];
  if (block_cache_ != nullptr) {
    std::snprintf(buf, sizeof(buf),
                  "\nblock_cache: hits=%llu misses=%llu evictions=%llu "
                  "usage=%zu",
                  static_cast<unsigned long long>(block_cache_->hits()),
                  static_cast<unsigned long long>(block_cache_->misses()),
                  static_cast<unsigned long long>(block_cache_->evictions()),
                  block_cache_->usage());
  } else {
    std::snprintf(buf, sizeof(buf), "\nblock_cache: disabled");
  }
  report += buf;
  {
    std::lock_guard<std::mutex> lock(query_totals_mu_);
    std::snprintf(buf, sizeof(buf), "\nqueries: run=%llu ",
                  static_cast<unsigned long long>(queries_run_));
    report += buf;
    report += query_totals_.ToString();
  }
  return report;
}

void TimeUnionDB::AdviseMemoryRelease() {
  index_->AdviseDontNeed();
  {
    // The tag store is externally synchronized by reg_mu_ (registration is
    // its only writer).
    std::lock_guard<std::mutex> reg_lock(reg_mu_);
    tag_store_->AdviseDontNeed();
  }
  series_chunks_->AdviseDontNeed();
  group_ts_chunks_->AdviseDontNeed();
  group_val_chunks_->AdviseDontNeed();
}

}  // namespace tu::core
