#include "core/error_handler.h"

#include <algorithm>

namespace tu::core {

const char* DbHealthName(DbHealth h) {
  switch (h) {
    case DbHealth::kHealthy: return "healthy";
    case DbHealth::kDegradedWrites: return "degraded_writes";
    case DbHealth::kReadOnly: return "read_only";
    case DbHealth::kFatal: return "fatal";
  }
  return "unknown";
}

const char* BgErrorScopeName(BgErrorScope scope) {
  switch (scope) {
    case BgErrorScope::kFlush: return "flush";
    case BgErrorScope::kCompaction: return "compaction";
    case BgErrorScope::kWalAppend: return "wal_append";
    case BgErrorScope::kWalSync: return "wal_sync";
    case BgErrorScope::kDeferredDrain: return "deferred_drain";
    case BgErrorScope::kManifest: return "manifest";
  }
  return "unknown";
}

ErrorHandler::ErrorHandler(ErrorHandlerOptions options) : options_(options) {}

ErrorHandler::Severity ErrorHandler::Classify(BgErrorScope scope,
                                              const Status& s) const {
  // Deferred-drain failures never change health: the queue parks L2 output
  // on the fast tier exactly so a slow-tier outage is not a write-path
  // error, and the breaker + admission watermarks already govern it.
  if (scope == BgErrorScope::kDeferredDrain) return Severity::kNoted;
  if (s.IsCorruption()) {
    // A corrupt manifest means the tree itself can no longer be trusted or
    // rewritten in place; anywhere else the integrity machinery
    // (quarantine, other-tier fallback) contains it, but writes stop until
    // an operator looks.
    return scope == BgErrorScope::kManifest ? Severity::kFatal
                                            : Severity::kHard;
  }
  // The retryable-environment classes: transient I/O, throttling, a tier
  // outage, disk full, resource pressure. All recoverable in place once
  // the condition clears.
  if (s.IsBusy() || s.IsUnavailable() || s.IsOutOfSpace() || s.IsIOError() ||
      s.IsResourceExhausted()) {
    return Severity::kSoft;
  }
  // Anything else (NotFound, InvalidArgument, ...) coming out of
  // background work is a logic invariant broken, not an environment
  // hiccup — do not auto-retry into it.
  return Severity::kHard;
}

void ErrorHandler::EscalateLocked(DbHealth target) {
  const DbHealth current = state_.load(std::memory_order_relaxed);
  if (static_cast<int>(target) > static_cast<int>(current)) {
    state_.store(target, std::memory_order_relaxed);
  }
}

ErrorHandler::Severity ErrorHandler::OnBackgroundError(BgErrorScope scope,
                                                       const Status& s,
                                                       int64_t now_ms) {
  if (s.ok()) return Severity::kNoted;
  const Severity sev = Classify(scope, s);
  std::lock_guard<std::mutex> lock(mu_);
  counters_.errors_total++;
  counters_.errors_by_scope[static_cast<int>(scope)]++;
  switch (sev) {
    case Severity::kNoted:
      counters_.noted_errors++;
      // Recorded for introspection only when nothing worse is latched.
      if (last_error_.ok()) {
        last_error_ = s;
        last_scope_ = scope;
      }
      return sev;
    case Severity::kSoft:
      counters_.soft_errors++;
      if (state_.load(std::memory_order_relaxed) == DbHealth::kHealthy) {
        // First probe is due immediately: a condition that already cleared
        // (flaky fsync, freed space) resumes on the next maintenance tick.
        next_resume_ms_ = now_ms;
        backoff_ms_ = 0;
        counters_.consecutive_resume_failures = 0;
      }
      EscalateLocked(DbHealth::kDegradedWrites);
      break;
    case Severity::kHard:
      counters_.hard_errors++;
      EscalateLocked(DbHealth::kReadOnly);
      break;
    case Severity::kFatal:
      counters_.fatal_errors++;
      EscalateLocked(DbHealth::kFatal);
      break;
  }
  last_error_ = s;
  last_scope_ = scope;
  return sev;
}

Status ErrorHandler::CheckWriteAllowed() const {
  const DbHealth h = state_.load(std::memory_order_relaxed);
  if (h == DbHealth::kHealthy) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  const std::string detail =
      std::string(BgErrorScopeName(last_scope_)) + ": " +
      last_error_.ToString();
  if (h == DbHealth::kDegradedWrites) {
    return Status::ResourceExhausted("writes quiesced by background error (" +
                                     detail + ")");
  }
  return Status::Unavailable(std::string("db is ") + DbHealthName(h) +
                             " after background error (" + detail + ")");
}

bool ErrorHandler::ShouldAttemptResume(int64_t now_ms) const {
  if (!options_.auto_resume) return false;
  if (state_.load(std::memory_order_relaxed) != DbHealth::kDegradedWrites) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  return now_ms >= next_resume_ms_;
}

bool ErrorHandler::CanResume() const {
  const DbHealth h = state_.load(std::memory_order_relaxed);
  return h == DbHealth::kDegradedWrites || h == DbHealth::kReadOnly;
}

void ErrorHandler::OnResumeAttempt() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.resume_attempts++;
}

void ErrorHandler::OnResumeSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.resumes_succeeded++;
  counters_.consecutive_resume_failures = 0;
  backoff_ms_ = 0;
  next_resume_ms_ = 0;
  last_error_ = Status::OK();
  state_.store(DbHealth::kHealthy, std::memory_order_relaxed);
}

void ErrorHandler::OnResumeFailure(const Status& s, int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.resume_failures++;
  counters_.consecutive_resume_failures++;
  if (!s.ok()) {
    last_error_ = s;
  }
  backoff_ms_ = backoff_ms_ == 0
                    ? options_.resume_backoff_initial_ms
                    : std::min(backoff_ms_ * 2, options_.resume_backoff_max_ms);
  next_resume_ms_ = now_ms + backoff_ms_;
  if (options_.max_resume_attempts > 0 &&
      counters_.consecutive_resume_failures >=
          static_cast<uint64_t>(options_.max_resume_attempts)) {
    // The environment is not coming back on its own: stop burning probes
    // and hold for a manual Resume().
    EscalateLocked(DbHealth::kReadOnly);
  }
}

Status ErrorHandler::LastError() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

BgErrorScope ErrorHandler::LastScope() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_scope_;
}

ErrorHandler::Counters ErrorHandler::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace tu::core
