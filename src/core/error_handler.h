// ErrorHandler: the background-error state machine (DESIGN.md "Background
// error handling and auto-recovery").
//
// Every error surfaced by background work — memtable flush, compaction,
// WAL append/sync, deferred-upload drain — is classified by (operation
// scope x status code) instead of latching the first status forever:
//
//   kHealthy ──soft──▶ kDegradedWrites ──resume ok──▶ kHealthy
//      │                    │ backoff exhausted / hard error
//      │ hard               ▼
//      └─────────────▶ kReadOnly ──manual Resume() ok──▶ kHealthy
//                           │ fatal (manifest corruption)
//                           ▼
//                        kFatal (reopen required)
//
// Soft errors (transient I/O, ENOSPC, throttling) quiesce the write path:
// appends fail fast with kResourceExhausted instead of piling samples into
// memtables the flusher cannot drain, while reads keep serving. The
// maintenance tick then runs bounded-backoff resume probes that retry the
// failed work from its retained inputs and return the DB to kHealthy
// without a reopen. Hard errors (corruption outside the manifest,
// non-retryable classes) stop writes until a manual Resume(); manifest
// corruption is fatal.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "util/status.h"

namespace tu::core {

/// Overall DB write-path health. Ordered by severity: transitions driven
/// by errors only escalate; only a successful resume goes back down.
enum class DbHealth : int {
  kHealthy = 0,
  kDegradedWrites = 1,  ///< soft error: appends quiesced, auto-resumable
  kReadOnly = 2,        ///< hard error or backoff exhausted: manual resume
  kFatal = 3,           ///< unrecoverable (manifest corruption): reopen
};

const char* DbHealthName(DbHealth h);

/// Where a background error was observed. The scope changes the verdict:
/// e.g. Corruption from a compaction input is kHard (quarantine territory)
/// while Corruption from a manifest commit is kFatal, and deferred-drain
/// failures are merely noted (the park-on-fast-tier queue already
/// preserves write availability; admission watermarks bound the fill).
enum class BgErrorScope : int {
  kFlush = 0,
  kCompaction = 1,
  kWalAppend = 2,
  kWalSync = 3,
  kDeferredDrain = 4,
  kManifest = 5,
};
constexpr int kNumBgErrorScopes = 6;

const char* BgErrorScopeName(BgErrorScope scope);

struct ErrorHandlerOptions {
  /// Run resume probes from the maintenance tick while kDegradedWrites.
  bool auto_resume = true;
  /// Consecutive failed resume probes before escalating to kReadOnly.
  int max_resume_attempts = 8;
  /// Backoff between probes: doubles from initial to max per consecutive
  /// failure. The FIRST probe after an error is due immediately, so a
  /// condition that already cleared resumes within one maintenance tick.
  int64_t resume_backoff_initial_ms = 1000;
  int64_t resume_backoff_max_ms = 60'000;
};

class ErrorHandler {
 public:
  enum class Severity { kNoted, kSoft, kHard, kFatal };

  explicit ErrorHandler(ErrorHandlerOptions options = {});

  /// Classifies and records one background error; escalates the health
  /// state when the verdict demands it. Thread-safe; called from flush
  /// workers, the maintenance tick and foreground WAL writers alike.
  /// `now_ms` is the caller's monotonic clock (first resume probe is due
  /// immediately at that time).
  Severity OnBackgroundError(BgErrorScope scope, const Status& s,
                             int64_t now_ms);

  /// Current health (relaxed atomic — safe on the hot path).
  DbHealth health() const { return state_.load(std::memory_order_relaxed); }

  /// Write-path gate: OK when healthy, kResourceExhausted when writes are
  /// quiesced by a soft error, kUnavailable when read-only or fatal. One
  /// relaxed load in the healthy case.
  Status CheckWriteAllowed() const;

  // -- Resume protocol ------------------------------------------------------
  /// True when an auto-resume probe is due (kDegradedWrites, auto_resume
  /// on, and the backoff window has elapsed).
  bool ShouldAttemptResume(int64_t now_ms) const;
  /// True when a manual Resume() may attempt recovery (degraded or
  /// read-only — never fatal).
  bool CanResume() const;
  void OnResumeAttempt();
  /// Probe recovered everything: back to kHealthy, error and backoff
  /// cleared.
  void OnResumeSuccess();
  /// Probe failed: doubles the backoff; after max_resume_attempts
  /// consecutive failures escalates kDegradedWrites -> kReadOnly.
  void OnResumeFailure(const Status& s, int64_t now_ms);

  // -- Introspection ---------------------------------------------------------
  /// The most recent background error (OK when healthy / after resume).
  Status LastError() const;
  BgErrorScope LastScope() const;

  struct Counters {
    uint64_t errors_total = 0;
    uint64_t errors_by_scope[kNumBgErrorScopes] = {};
    uint64_t soft_errors = 0;
    uint64_t hard_errors = 0;
    uint64_t fatal_errors = 0;
    uint64_t noted_errors = 0;
    uint64_t resume_attempts = 0;
    uint64_t resumes_succeeded = 0;
    uint64_t resume_failures = 0;
    /// Consecutive failed probes since the last success (live value).
    uint64_t consecutive_resume_failures = 0;
  };
  Counters counters() const;

  const ErrorHandlerOptions& options() const { return options_; }

 private:
  Severity Classify(BgErrorScope scope, const Status& s) const;
  /// Escalates to `target` if it is worse than the current state; caller
  /// holds mu_.
  void EscalateLocked(DbHealth target);

  ErrorHandlerOptions options_;
  std::atomic<DbHealth> state_{DbHealth::kHealthy};

  mutable std::mutex mu_;
  Status last_error_;                              // guarded by mu_
  BgErrorScope last_scope_ = BgErrorScope::kFlush; // guarded by mu_
  int64_t next_resume_ms_ = 0;                     // guarded by mu_
  int64_t backoff_ms_ = 0;                         // guarded by mu_
  Counters counters_;                              // guarded by mu_
};

}  // namespace tu::core
