// WriteBatch: the one batched entry point of the write path. The network
// front door decodes whole remote-write frames into a WriteBatch and hands
// it to TimeUnionDB::Write, which amortizes the per-write overheads —
// admission check, WAL mutex, shard/stripe lock acquisition — across the
// batch instead of paying them per sample. The four legacy insert calls
// (Insert / InsertFast / InsertGroup / InsertGroupFast) are thin shims
// that wrap one row in a batch, so there is exactly one write pipeline.
//
// Rows come in four sections, columnar where it matters:
//   - ref samples: parallel (ref, ts, value) columns — the fast path.
//     Sorted-by-ref runs share one shard/stripe lock acquisition.
//   - labeled samples: (labels, ts, value) rows; Write resolves (or
//     registers) each label set and reports the ref in
//     WriteResult::resolved_refs so clients can switch to ref addressing.
//   - group rows by ref: (group_ref, slots, ts, values).
//   - labeled group rows: (group tags, member tags, ts, values); resolved
//     group ref + member slots land in WriteResult::resolved_groups.
//
// Error semantics are per row: a bad row is counted in `rejected` (first
// failure kept in `first_error`) and the rest of the batch still applies.
// Batch-scoped gates — write quiesce after a background error, admission
// hard watermark — reject the whole batch before any row is applied.
#pragma once

#include <cstdint>
#include <vector>

#include "index/labels.h"
#include "util/status.h"

namespace tu::core {

struct WriteBatch {
  /// Fast-path samples addressed by series reference (parallel columns).
  std::vector<uint64_t> sample_refs;
  std::vector<int64_t> sample_ts;
  std::vector<double> sample_values;

  /// Slow-path samples addressed by label set.
  struct LabeledSample {
    index::Labels labels;
    int64_t ts = 0;
    double value = 0;
  };
  std::vector<LabeledSample> labeled_samples;

  /// Group rows addressed by group reference + member slots.
  struct GroupRow {
    uint64_t group_ref = 0;
    std::vector<uint32_t> slots;
    int64_t ts = 0;
    std::vector<double> values;  // parallel to slots
  };
  std::vector<GroupRow> group_rows;

  /// Group rows addressed by (group tags, member tags).
  struct LabeledGroupRow {
    index::Labels group_tags;
    std::vector<index::Labels> member_tags;
    int64_t ts = 0;
    std::vector<double> values;  // parallel to member_tags
  };
  std::vector<LabeledGroupRow> labeled_group_rows;

  void AddSample(uint64_t ref, int64_t ts, double value) {
    sample_refs.push_back(ref);
    sample_ts.push_back(ts);
    sample_values.push_back(value);
  }
  void AddSample(index::Labels labels, int64_t ts, double value) {
    labeled_samples.push_back({std::move(labels), ts, value});
  }
  void AddGroupRow(uint64_t group_ref, std::vector<uint32_t> slots, int64_t ts,
                   std::vector<double> values) {
    group_rows.push_back(
        {group_ref, std::move(slots), ts, std::move(values)});
  }
  void AddGroupRow(index::Labels group_tags,
                   std::vector<index::Labels> member_tags, int64_t ts,
                   std::vector<double> values) {
    labeled_group_rows.push_back(
        {std::move(group_tags), std::move(member_tags), ts,
         std::move(values)});
  }

  /// Rows in the batch (a group row counts once).
  size_t NumRows() const {
    return sample_refs.size() + labeled_samples.size() + group_rows.size() +
           labeled_group_rows.size();
  }
  /// Individual samples in the batch (a group row counts its values).
  size_t NumSamples() const {
    size_t n = sample_refs.size() + labeled_samples.size();
    for (const GroupRow& r : group_rows) n += r.values.size();
    for (const LabeledGroupRow& r : labeled_group_rows) n += r.values.size();
    return n;
  }
  bool empty() const { return NumRows() == 0; }

  /// Clears rows, keeping section capacity (reuse across frames).
  void Clear() {
    sample_refs.clear();
    sample_ts.clear();
    sample_values.clear();
    labeled_samples.clear();
    group_rows.clear();
    labeled_group_rows.clear();
  }
};

/// Per-batch outcome of TimeUnionDB::Write.
struct WriteResult {
  /// Rows fully applied / rejected. appended + rejected == NumRows()
  /// unless a batch-scoped gate rejected everything up front (then
  /// rejected == NumRows() and `first_error` holds the gate's status).
  uint64_t appended = 0;
  uint64_t rejected = 0;
  /// First row (or gate) failure; OK when the whole batch applied.
  Status first_error;
  /// Resolved series refs, parallel to WriteBatch::labeled_samples (0 for
  /// rows that failed to resolve).
  std::vector<uint64_t> resolved_refs;
  /// Resolved group refs + member slots, parallel to
  /// WriteBatch::labeled_group_rows.
  struct ResolvedGroup {
    uint64_t group_ref = 0;
    std::vector<uint32_t> slots;
  };
  std::vector<ResolvedGroup> resolved_groups;

  bool ok() const { return first_error.ok(); }
  void Clear() {
    appended = 0;
    rejected = 0;
    first_error = Status::OK();
    resolved_refs.clear();
    resolved_groups.clear();
  }
};

}  // namespace tu::core
