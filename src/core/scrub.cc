#include "core/scrub.h"

namespace tu::core {

namespace {
/// Cursor file at the fast-tier root (outside the LSM directory, so the
/// open-time orphan sweep never touches it).
constexpr char kCursorFile[] = "SCRUB_CURSOR";
}  // namespace

Scrubber::Scrubber(lsm::TimePartitionedLsm* lsm, cloud::TieredEnv* env,
                   ScrubOptions options, obs::MetricsRegistry* metrics)
    : lsm_(lsm),
      env_(env),
      options_(options),
      c_tables_scanned_(metrics->counter("scrub.tables_scanned")),
      c_bytes_verified_(metrics->counter("scrub.bytes_verified")),
      c_corruptions_found_(metrics->counter("scrub.corruptions_found")),
      c_repaired_(metrics->counter("scrub.repaired")),
      c_quarantined_(metrics->counter("scrub.quarantined")),
      c_passes_(metrics->counter("scrub.passes")),
      trace_(&metrics->trace()) {}

Status Scrubber::LoadCursor(uint64_t* cursor) {
  *cursor = 0;
  if (!options_.persist_cursor) return Status::OK();
  std::string contents;
  Status s = env_->fast().ReadFileToString(kCursorFile, &contents);
  if (s.IsNotFound()) return Status::OK();
  TU_RETURN_IF_ERROR(s);
  uint64_t value = 0;
  for (char c : contents) {
    if (c < '0' || c > '9') return Status::OK();  // garbage: restart pass
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *cursor = value;
  return Status::OK();
}

void Scrubber::SaveCursor(uint64_t cursor) {
  if (!options_.persist_cursor) return;
  // Best effort: a lost cursor only costs re-verifying already-clean
  // tables on the next pass.
  (void)env_->fast().WriteStringToFile(kCursorFile, std::to_string(cursor));
}

Status Scrubber::ScrubFrom(uint64_t* cursor, uint64_t budget) {
  using Outcome = lsm::TimePartitionedLsm::ScrubOutcome;
  const auto tables = lsm_->ListTables();
  uint64_t spent = 0;
  size_t i = 0;
  while (i < tables.size() && tables[i].table_id < *cursor) ++i;
  for (; i < tables.size(); ++i) {
    const uint64_t table_id = tables[i].table_id;
    Outcome outcome = Outcome::kSkipped;
    std::string detail;
    uint64_t verified = 0;
    Status s = lsm_->ScrubOneTable(table_id, options_.repair, &outcome,
                                   &detail, &verified);
    c_bytes_verified_->Add(verified);
    spent += verified;
    if (!s.ok()) {
      // Environmental failure (tier unreachable): park the cursor on this
      // table so the next tick retries it.
      *cursor = table_id;
      return s;
    }
    if (outcome != Outcome::kSkipped) c_tables_scanned_->Add();
    const std::string label = "table=" + std::to_string(table_id);
    switch (outcome) {
      case Outcome::kClean:
      case Outcome::kSkipped:
        break;
      case Outcome::kCorrupt:
        c_corruptions_found_->Add();
        trace_->Record("scrub.corrupt", label + " " + detail);
        break;
      case Outcome::kRepaired:
        c_corruptions_found_->Add();
        c_repaired_->Add();
        trace_->Record("scrub.repair", label + " " + detail);
        break;
      case Outcome::kQuarantined:
        c_corruptions_found_->Add();
        c_quarantined_->Add();
        trace_->Record("scrub.quarantine", label + " " + detail);
        break;
    }
    if (budget != 0 && spent >= budget && i + 1 < tables.size()) {
      *cursor = tables[i + 1].table_id;
      return Status::OK();
    }
  }
  // Pass complete; the next increment starts a fresh pass from the top.
  c_passes_->Add();
  trace_->Record("scrub.pass",
                 "tables=" + std::to_string(tables.size()) +
                     " bytes=" + std::to_string(spent));
  *cursor = 0;
  return Status::OK();
}

Status Scrubber::Tick() {
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) return Status::OK();  // another increment is running
  if (!cursor_loaded_) {
    TU_RETURN_IF_ERROR(LoadCursor(&cursor_));
    cursor_loaded_ = true;
  }
  Status s = ScrubFrom(&cursor_, options_.bytes_per_tick);
  SaveCursor(cursor_);
  return s;
}

Status Scrubber::RunFullPass(PassReport* report) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t scanned0 = c_tables_scanned_->value();
  const uint64_t bytes0 = c_bytes_verified_->value();
  const uint64_t found0 = c_corruptions_found_->value();
  const uint64_t repaired0 = c_repaired_->value();
  const uint64_t quarantined0 = c_quarantined_->value();

  cursor_ = 0;
  cursor_loaded_ = true;
  Status s = ScrubFrom(&cursor_, /*budget=*/0);
  SaveCursor(cursor_);

  if (report != nullptr) {
    report->tables_scanned = c_tables_scanned_->value() - scanned0;
    report->bytes_verified = c_bytes_verified_->value() - bytes0;
    report->corruptions_found = c_corruptions_found_->value() - found0;
    report->repaired = c_repaired_->value() - repaired0;
    report->quarantined = c_quarantined_->value() - quarantined0;
  }
  return s;
}

}  // namespace tu::core
