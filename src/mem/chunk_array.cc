#include "mem/chunk_array.h"

#include <cstdio>
#include <cstring>

#include "util/memory_tracker.h"

namespace tu::mem {

ChunkArray::ChunkArray(std::string dir, std::string name, size_t chunk_size,
                       size_t chunks_per_file)
    : dir_(std::move(dir)),
      name_(std::move(name)),
      chunk_size_(chunk_size),
      chunks_per_file_(chunks_per_file) {
  // Header: bitmap rounded up to 64 bytes for alignment.
  header_bytes_ = ((chunks_per_file_ + 7) / 8 + 63) / 64 * 64;
}

ChunkArray::~ChunkArray() {
  MemoryTracker::Global().Sub(MemCategory::kSamples,
                              static_cast<int64_t>(MemoryUsage()));
}

Status ChunkArray::AddFile() {
  TU_RETURN_IF_ERROR(EnsureDir(dir_));
  char suffix[16];
  snprintf(suffix, sizeof(suffix), ".%04zu", files_.size());
  const size_t file_bytes = header_bytes_ + chunks_per_file_ * chunk_size_;
  File f;
  TU_RETURN_IF_ERROR(
      MmapFile::Open(dir_ + "/" + name_ + suffix, file_bytes, &f.mmap));
  f.bitmap = std::make_unique<Bitmap>(
      reinterpret_cast<uint8_t*>(f.mmap->data()), chunks_per_file_);
  files_.push_back(std::move(f));
  return Status::OK();
}

Status ChunkArray::Allocate(uint64_t* slot) {
  for (size_t pass = 0; pass < files_.size(); ++pass) {
    const size_t fi = (alloc_hint_file_ + pass) % files_.size();
    const size_t bit = files_[fi].bitmap->FirstClear();
    if (bit < chunks_per_file_) {
      files_[fi].bitmap->Set(bit);
      alloc_hint_file_ = fi;
      *slot = fi * chunks_per_file_ + bit;
      ++allocated_;
      MemoryTracker::Global().Add(MemCategory::kSamples,
                                  static_cast<int64_t>(chunk_size_));
      return Status::OK();
    }
  }
  TU_RETURN_IF_ERROR(AddFile());
  const size_t fi = files_.size() - 1;
  files_[fi].bitmap->Set(0);
  alloc_hint_file_ = fi;
  *slot = fi * chunks_per_file_;
  ++allocated_;
  MemoryTracker::Global().Add(MemCategory::kSamples,
                              static_cast<int64_t>(chunk_size_));
  return Status::OK();
}

void ChunkArray::Free(uint64_t slot) {
  const size_t fi = slot / chunks_per_file_;
  const size_t bit = slot % chunks_per_file_;
  files_[fi].bitmap->Clear(bit);
  memset(ChunkData(slot), 0, chunk_size_);
  --allocated_;
  MemoryTracker::Global().Sub(MemCategory::kSamples,
                              static_cast<int64_t>(chunk_size_));
}

char* ChunkArray::ChunkData(uint64_t slot) {
  const size_t fi = slot / chunks_per_file_;
  const size_t bit = slot % chunks_per_file_;
  return files_[fi].mmap->data() + header_bytes_ + bit * chunk_size_;
}

const char* ChunkArray::ChunkData(uint64_t slot) const {
  return const_cast<ChunkArray*>(this)->ChunkData(slot);
}

Status ChunkArray::Sync() {
  for (auto& f : files_) TU_RETURN_IF_ERROR(f.mmap->Sync());
  return Status::OK();
}

void ChunkArray::AdviseDontNeed() {
  for (auto& f : files_) f.mmap->AdviseDontNeed();
}

}  // namespace tu::mem
