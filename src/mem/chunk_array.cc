#include "mem/chunk_array.h"

#include <cstdio>
#include <cstring>

#include "util/memory_tracker.h"

namespace tu::mem {

ChunkArray::ChunkArray(std::string dir, std::string name, size_t chunk_size,
                       size_t chunks_per_file)
    : dir_(std::move(dir)),
      name_(std::move(name)),
      chunk_size_(chunk_size),
      chunks_per_file_(chunks_per_file) {
  // Header: bitmap rounded up to 64 bytes for alignment.
  header_bytes_ = ((chunks_per_file_ + 7) / 8 + 63) / 64 * 64;
}

ChunkArray::~ChunkArray() {
  MemoryTracker::Global().Sub(MemCategory::kSamples,
                              static_cast<int64_t>(MemoryUsage()));
}

Status ChunkArray::AddFile() {
  TU_RETURN_IF_ERROR(EnsureDir(dir_));
  char suffix[16];
  snprintf(suffix, sizeof(suffix), ".%04zu", files_.size());
  const size_t file_bytes = header_bytes_ + chunks_per_file_ * chunk_size_;
  File f;
  TU_RETURN_IF_ERROR(
      MmapFile::Open(dir_ + "/" + name_ + suffix, file_bytes, &f.mmap));
  f.bitmap = std::make_unique<Bitmap>(
      reinterpret_cast<uint8_t*>(f.mmap->data()), chunks_per_file_);
  files_.push_back(std::move(f));
  return Status::OK();
}

Status ChunkArray::Allocate(uint64_t* slot) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t pass = 0; pass < files_.size(); ++pass) {
    const size_t fi = (alloc_hint_file_ + pass) % files_.size();
    const size_t bit = files_[fi].bitmap->FirstClear();
    if (bit < chunks_per_file_) {
      files_[fi].bitmap->Set(bit);
      alloc_hint_file_ = fi;
      *slot = fi * chunks_per_file_ + bit;
      allocated_.fetch_add(1, std::memory_order_relaxed);
      MemoryTracker::Global().Add(MemCategory::kSamples,
                                  static_cast<int64_t>(chunk_size_));
      return Status::OK();
    }
  }
  TU_RETURN_IF_ERROR(AddFile());
  const size_t fi = files_.size() - 1;
  files_[fi].bitmap->Set(0);
  alloc_hint_file_ = fi;
  *slot = fi * chunks_per_file_;
  allocated_.fetch_add(1, std::memory_order_relaxed);
  MemoryTracker::Global().Add(MemCategory::kSamples,
                              static_cast<int64_t>(chunk_size_));
  return Status::OK();
}

void ChunkArray::Free(uint64_t slot) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t fi = slot / chunks_per_file_;
  const size_t bit = slot % chunks_per_file_;
  files_[fi].bitmap->Clear(bit);
  memset(ChunkDataLocked(slot), 0, chunk_size_);
  allocated_.fetch_sub(1, std::memory_order_relaxed);
  MemoryTracker::Global().Sub(MemCategory::kSamples,
                              static_cast<int64_t>(chunk_size_));
}

char* ChunkArray::ChunkDataLocked(uint64_t slot) const {
  const size_t fi = slot / chunks_per_file_;
  const size_t bit = slot % chunks_per_file_;
  return files_[fi].mmap->data() + header_bytes_ + bit * chunk_size_;
}

char* ChunkArray::ChunkData(uint64_t slot) {
  // The lock protects the `files_` vector (growth reallocates it); the
  // returned payload pointer itself is stable and may outlive the lock.
  std::lock_guard<std::mutex> lock(mu_);
  return ChunkDataLocked(slot);
}

const char* ChunkArray::ChunkData(uint64_t slot) const {
  return const_cast<ChunkArray*>(this)->ChunkData(slot);
}

Status ChunkArray::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& f : files_) TU_RETURN_IF_ERROR(f.mmap->Sync());
  return Status::OK();
}

void ChunkArray::AdviseDontNeed() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& f : files_) f.mmap->AdviseDontNeed();
}

}  // namespace tu::mem
