// Head objects: the per-timeseries / per-group memory objects of §3.2-3.3.
// Each head owns a small open chunk (default 32 samples) whose compressed
// bytes live in mmap chunk arrays (Fig. 9):
//   - individual series: timestamps + values share one chunk slot
//     (two halves of the slot);
//   - groups: one shared timestamp chunk + one value chunk per member,
//     in separate arrays.
// When an open chunk fills (or a partition boundary / early-flush event
// closes it), the head serializes it into the key-value pair inserted into
// the time-partitioned LSM-tree.
//
// Thread safety: heads are externally synchronized. TimeUnionDB guards
// every head mutation AND read (Append/InsertRow, CloseChunk, Snapshot*,
// seq_id/last_ts/num_members) with the per-entry striped append lock;
// heads themselves hold no locks. The underlying ChunkArray is internally
// synchronized and its payload pointers are stable, so two heads under
// different entry locks may allocate/write chunks concurrently.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "compress/chunk.h"
#include "compress/gorilla.h"
#include "index/labels.h"
#include "mem/chunk_array.h"
#include "util/status.h"

namespace tu::mem {

/// Append outcome of head open-chunk operations.
enum class AppendResult {
  kOk,            // appended to the open chunk
  kChunkClosed,   // append done; the chunk filled up and must be flushed
  kNeedsFlush,    // cannot append until the caller closes the open chunk
  kDuplicate,     // same-timestamp sample replaced in place
};

/// Memory object of one individual timeseries.
class SeriesHead {
 public:
  /// `chunks`: the series chunk array; one slot holds both columns
  /// (first half timestamps, second half values). samples_per_chunk is the
  /// chunk close threshold (§3.2: 32 by default, user-adjustable).
  SeriesHead(uint64_t id, uint64_t tag_offset, ChunkArray* chunks,
             uint32_t samples_per_chunk);
  ~SeriesHead();

  uint64_t id() const { return id_; }
  uint64_t tag_offset() const { return tag_offset_; }
  uint64_t seq_id() const { return seq_id_; }
  int64_t last_ts() const { return last_ts_; }
  bool has_open_chunk() const { return open_ != nullptr; }
  int64_t open_first_ts() const { return open_ ? open_->first_ts : 0; }
  uint32_t open_count() const { return open_ ? open_->count : 0; }

  /// Appends one sample. `partition_end` bounds the open chunk: a sample
  /// with ts >= partition_end returns kNeedsFlush so the caller closes the
  /// chunk first (chunks never span time partitions, §3.3).
  /// Out-of-order samples inside the open chunk range are merged in place;
  /// samples older than the open chunk return kNeedsFlush with
  /// *too_old=true so the caller routes them directly to the LSM.
  Status Append(int64_t ts, double value, int64_t partition_end,
                AppendResult* result, bool* too_old);

  /// Serializes and releases the open chunk. Returns the chunk payload
  /// (seq-id embedded) and its starting timestamp. No-op -> false when
  /// there is no open chunk.
  bool CloseChunk(std::string* payload, int64_t* first_ts);

  /// Copies the open chunk samples (query path). Empty if none.
  Status SnapshotOpen(std::vector<compress::Sample>* samples) const;

  /// Range-restricted snapshot for the unified query pipeline: only
  /// samples inside [t0, t1] are copied, so a narrow query does not drag
  /// the whole open chunk through the entry lock.
  Status SnapshotOpen(int64_t t0, int64_t t1,
                      std::vector<compress::Sample>* samples) const;

 private:
  struct OpenChunk {
    uint64_t slot = 0;
    std::unique_ptr<compress::SeriesChunkBuilder> builder;
    uint32_t count = 0;
    int64_t first_ts = 0;
    int64_t last_ts = 0;
    int64_t partition_end = 0;
  };

  Status OpenNewChunk(int64_t partition_end);
  /// Decodes the open chunk, merges `(ts, value)`, re-encodes in place. If
  /// the merged chunk no longer fits the slot, it is staged as an overflow
  /// payload and the caller must CloseChunk() (signalled by kChunkClosed).
  Status MergeIntoOpen(int64_t ts, double value, AppendResult* result);

  uint64_t id_;
  uint64_t tag_offset_;
  ChunkArray* chunks_;
  uint32_t samples_per_chunk_;
  std::unique_ptr<OpenChunk> open_;
  /// Set when a merge outgrew the slot: consumed by the next CloseChunk.
  std::string overflow_payload_;
  int64_t overflow_first_ts_ = 0;
  bool has_overflow_ = false;
  uint64_t seq_id_ = 0;
  int64_t last_ts_ = INT64_MIN;
};

/// One member of a group: its unique tags (offset into the TagStore) plus
/// its open value column.
struct GroupMember {
  uint64_t tag_offset = 0;
  std::string labels_key;  // dedup key of the unique tags
};

/// Memory object of one timeseries group: shared timestamp column +
/// independent per-member value columns (§3.1 physical view).
class GroupHead {
 public:
  GroupHead(uint64_t id, uint64_t group_tag_offset, ChunkArray* ts_chunks,
            ChunkArray* val_chunks, uint32_t samples_per_chunk);
  ~GroupHead();

  uint64_t id() const { return id_; }
  uint64_t group_tag_offset() const { return group_tag_offset_; }
  uint64_t seq_id() const { return seq_id_; }
  int64_t last_ts() const { return last_ts_; }
  bool has_open_chunk() const { return open_count_ > 0 || ts_slot_valid_; }
  int64_t open_first_ts() const { return first_ts_; }
  uint32_t open_count() const { return open_count_; }

  size_t num_members() const { return members_.size(); }
  const GroupMember& member(size_t i) const { return members_[i]; }

  /// Finds a member by its unique-tags key; returns member index or -1.
  int FindMember(const std::string& labels_key) const;

  /// Appends a member (§3.1 case 2: insertion with new timeseries). If the
  /// open chunk already has rows, the new column is backfilled with NULLs.
  Status AddMember(uint64_t tag_offset, const std::string& labels_key,
                   uint32_t* member_index);

  /// Inserts one shared-timestamp row. `member_indexes`/`values` list the
  /// members present this round; all other members get NULL (§3.1 case 3).
  /// Same semantics as SeriesHead::Append for partition bounds and
  /// out-of-order rows.
  Status InsertRow(int64_t ts, const std::vector<uint32_t>& member_indexes,
                   const std::vector<double>& values, int64_t partition_end,
                   AppendResult* result, bool* too_old);

  /// Serializes and releases the open chunk (group format).
  bool CloseChunk(std::string* payload, int64_t* first_ts);

  /// Copies the open-chunk samples of one member (query path).
  Status SnapshotMember(uint32_t member_index,
                        std::vector<compress::Sample>* samples) const;

  /// Range-restricted member snapshot (see SeriesHead::SnapshotOpen).
  Status SnapshotMember(uint32_t member_index, int64_t t0, int64_t t1,
                        std::vector<compress::Sample>* samples) const;

 private:
  struct Column {
    uint64_t slot = 0;
    bool valid = false;
    std::unique_ptr<compress::BitWriter> writer;
    compress::NullableValueEncoder encoder;
  };

  Status EnsureOpen(int64_t partition_end);
  Status EnsureColumn(size_t member_index);
  /// Re-encodes the open chunk with row (ts, values) merged in.
  Status MergeRowIntoOpen(int64_t ts,
                          const std::vector<std::optional<double>>& row_values,
                          AppendResult* result);
  /// Decodes the current open chunk into rows.
  Status DecodeOpen(std::vector<compress::GroupRow>* rows) const;
  void ReleaseOpen();
  /// Writes decoded rows back into fresh column buffers.
  Status ReencodeOpen(const std::vector<compress::GroupRow>& rows);
  bool RowFits() const;

  uint64_t id_;
  uint64_t group_tag_offset_;
  ChunkArray* ts_chunks_;
  ChunkArray* val_chunks_;
  uint32_t samples_per_chunk_;

  std::vector<GroupMember> members_;

  // Open chunk state.
  /// Set when a merge outgrew the column slots: consumed by CloseChunk.
  std::string overflow_payload_;
  int64_t overflow_first_ts_ = 0;
  bool has_overflow_ = false;

  bool ts_slot_valid_ = false;
  uint64_t ts_slot_ = 0;
  std::unique_ptr<compress::BitWriter> ts_writer_;
  compress::TimestampEncoder ts_encoder_;
  std::vector<Column> columns_;
  uint32_t open_count_ = 0;
  int64_t first_ts_ = 0;
  int64_t partition_end_ = 0;

  uint64_t seq_id_ = 0;
  int64_t last_ts_ = INT64_MIN;
};

}  // namespace tu::mem
