#include "mem/head.h"

#include <algorithm>
#include <cstring>

namespace tu::mem {

SeriesHead::SeriesHead(uint64_t id, uint64_t tag_offset, ChunkArray* chunks,
                       uint32_t samples_per_chunk)
    : id_(id),
      tag_offset_(tag_offset),
      chunks_(chunks),
      samples_per_chunk_(samples_per_chunk) {}

SeriesHead::~SeriesHead() {
  if (open_) chunks_->Free(open_->slot);
}

Status SeriesHead::OpenNewChunk(int64_t partition_end) {
  auto open = std::make_unique<OpenChunk>();
  TU_RETURN_IF_ERROR(chunks_->Allocate(&open->slot));
  char* data = chunks_->ChunkData(open->slot);
  const size_t half = chunks_->chunk_size() / 2;
  open->builder = std::make_unique<compress::SeriesChunkBuilder>(
      data, half, data + half, half);
  open->partition_end = partition_end;
  open_ = std::move(open);
  return Status::OK();
}

Status SeriesHead::MergeIntoOpen(int64_t ts, double value,
                                 AppendResult* result) {
  // Decode, merge, re-encode: §3.1 case 4 within the open chunk.
  std::vector<compress::Sample> samples;
  TU_RETURN_IF_ERROR(SnapshotOpen(&samples));
  bool replaced = false;
  auto it = std::lower_bound(
      samples.begin(), samples.end(), ts,
      [](const compress::Sample& s, int64_t t) { return s.timestamp < t; });
  if (it != samples.end() && it->timestamp == ts) {
    it->value = value;
    replaced = true;
  } else {
    samples.insert(it, compress::Sample{ts, value});
  }

  const int64_t partition_end = open_->partition_end;
  chunks_->Free(open_->slot);
  open_.reset();
  TU_RETURN_IF_ERROR(OpenNewChunk(partition_end));
  for (const compress::Sample& s : samples) {
    if (!open_->builder->HasSpace()) {
      // The merged chunk outgrew the slot (the insert perturbed the XOR
      // chains): stage the whole merged chunk as an overflow flush so no
      // sample is lost.
      chunks_->Free(open_->slot);
      open_.reset();
      compress::EncodeSeriesChunk(seq_id_, samples, &overflow_payload_);
      overflow_first_ts_ = samples.front().timestamp;
      has_overflow_ = true;
      *result = AppendResult::kChunkClosed;
      return Status::OK();
    }
    if (open_->count == 0) open_->first_ts = s.timestamp;
    open_->builder->Append(s.timestamp, s.value);
    ++open_->count;
    open_->last_ts = s.timestamp;
  }
  *result = replaced ? AppendResult::kDuplicate : AppendResult::kOk;
  return Status::OK();
}

Status SeriesHead::Append(int64_t ts, double value, int64_t partition_end,
                          AppendResult* result, bool* too_old) {
  *too_old = false;
  ++seq_id_;

  if (open_ && open_->count > 0) {
    if (ts < open_->first_ts) {
      // Older than the open chunk: caller routes to the LSM directly.
      *too_old = true;
      *result = AppendResult::kNeedsFlush;
      return Status::OK();
    }
    if (ts <= open_->last_ts) {
      // Inside the open chunk range: merge in place.
      Status s = MergeIntoOpen(ts, value, result);
      if (s.ok() && ts > last_ts_) last_ts_ = ts;
      return s;
    }
    if (ts >= open_->partition_end || !open_->builder->HasSpace()) {
      *result = AppendResult::kNeedsFlush;
      return Status::OK();
    }
  }

  if (!open_) {
    TU_RETURN_IF_ERROR(OpenNewChunk(partition_end));
  }
  if (open_->count == 0) {
    open_->first_ts = ts;
    open_->partition_end = partition_end;
  }
  open_->builder->Append(ts, value);
  ++open_->count;
  open_->last_ts = ts;
  if (ts > last_ts_) last_ts_ = ts;

  *result = (open_->count >= samples_per_chunk_) ? AppendResult::kChunkClosed
                                                 : AppendResult::kOk;
  return Status::OK();
}

bool SeriesHead::CloseChunk(std::string* payload, int64_t* first_ts) {
  if (has_overflow_) {
    *payload = std::move(overflow_payload_);
    *first_ts = overflow_first_ts_;
    overflow_payload_.clear();
    has_overflow_ = false;
    return true;
  }
  if (!open_ || open_->count == 0) {
    if (open_) {
      chunks_->Free(open_->slot);
      open_.reset();
    }
    return false;
  }
  const char* data = chunks_->ChunkData(open_->slot);
  const size_t half = chunks_->chunk_size() / 2;
  compress::SerializeSeriesChunk(seq_id_, open_->count, data,
                                 open_->builder->ts_bytes(), data + half,
                                 open_->builder->val_bytes(), payload);
  *first_ts = open_->first_ts;
  chunks_->Free(open_->slot);
  open_.reset();
  return true;
}

Status SeriesHead::SnapshotOpen(std::vector<compress::Sample>* samples) const {
  samples->clear();
  if (!open_ || open_->count == 0) return Status::OK();
  const char* data = chunks_->ChunkData(open_->slot);
  const size_t half = chunks_->chunk_size() / 2;
  compress::BitReader ts_reader(data, half);
  compress::BitReader val_reader(data + half, half);
  compress::TimestampDecoder ts_dec;
  compress::ValueDecoder val_dec;
  samples->reserve(open_->count);
  for (uint32_t i = 0; i < open_->count; ++i) {
    compress::Sample s;
    s.timestamp = ts_dec.Next(&ts_reader);
    s.value = val_dec.Next(&val_reader);
    samples->push_back(s);
  }
  return Status::OK();
}

Status SeriesHead::SnapshotOpen(int64_t t0, int64_t t1,
                                std::vector<compress::Sample>* samples) const {
  TU_RETURN_IF_ERROR(SnapshotOpen(samples));
  std::erase_if(*samples, [t0, t1](const compress::Sample& s) {
    return s.timestamp < t0 || s.timestamp > t1;
  });
  return Status::OK();
}

// ---------------------------------------------------------------------------
// GroupHead
// ---------------------------------------------------------------------------

GroupHead::GroupHead(uint64_t id, uint64_t group_tag_offset,
                     ChunkArray* ts_chunks, ChunkArray* val_chunks,
                     uint32_t samples_per_chunk)
    : id_(id),
      group_tag_offset_(group_tag_offset),
      ts_chunks_(ts_chunks),
      val_chunks_(val_chunks),
      samples_per_chunk_(samples_per_chunk) {}

GroupHead::~GroupHead() { ReleaseOpen(); }

void GroupHead::ReleaseOpen() {
  if (ts_slot_valid_) {
    ts_chunks_->Free(ts_slot_);
    ts_slot_valid_ = false;
  }
  ts_writer_.reset();
  ts_encoder_ = compress::TimestampEncoder();
  for (Column& c : columns_) {
    if (c.valid) {
      val_chunks_->Free(c.slot);
      c.valid = false;
    }
    c.writer.reset();
    c.encoder = compress::NullableValueEncoder();
  }
  open_count_ = 0;
}

int GroupHead::FindMember(const std::string& labels_key) const {
  for (size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].labels_key == labels_key) return static_cast<int>(i);
  }
  return -1;
}

Status GroupHead::AddMember(uint64_t tag_offset, const std::string& labels_key,
                            uint32_t* member_index) {
  *member_index = static_cast<uint32_t>(members_.size());
  members_.push_back(GroupMember{tag_offset, labels_key});
  columns_.emplace_back();
  if (open_count_ > 0) {
    // §3.1 case 2: backfill the new column with NULLs for existing rows.
    TU_RETURN_IF_ERROR(EnsureColumn(*member_index));
    Column& c = columns_[*member_index];
    for (uint32_t i = 0; i < open_count_; ++i) {
      c.encoder.AppendNull(c.writer.get());
    }
  }
  return Status::OK();
}

Status GroupHead::EnsureOpen(int64_t partition_end) {
  if (!ts_slot_valid_) {
    TU_RETURN_IF_ERROR(ts_chunks_->Allocate(&ts_slot_));
    ts_slot_valid_ = true;
    ts_writer_ = std::make_unique<compress::BitWriter>(
        ts_chunks_->ChunkData(ts_slot_), ts_chunks_->chunk_size());
    ts_encoder_ = compress::TimestampEncoder();
    open_count_ = 0;
    partition_end_ = partition_end;
  }
  return Status::OK();
}

Status GroupHead::EnsureColumn(size_t member_index) {
  Column& c = columns_[member_index];
  if (!c.valid) {
    TU_RETURN_IF_ERROR(val_chunks_->Allocate(&c.slot));
    c.valid = true;
    c.writer = std::make_unique<compress::BitWriter>(
        val_chunks_->ChunkData(c.slot), val_chunks_->chunk_size());
    c.encoder = compress::NullableValueEncoder();
  }
  return Status::OK();
}

bool GroupHead::RowFits() const {
  if (ts_writer_ &&
      ts_writer_->RemainingBits() < compress::kMaxBitsPerTimestamp) {
    return false;
  }
  for (const Column& c : columns_) {
    if (c.valid &&
        c.writer->RemainingBits() < compress::kMaxBitsPerNullableValue) {
      return false;
    }
  }
  return true;
}

Status GroupHead::DecodeOpen(std::vector<compress::GroupRow>* rows) const {
  rows->clear();
  if (open_count_ == 0) return Status::OK();
  compress::BitReader ts_reader(ts_chunks_->ChunkData(ts_slot_),
                                ts_chunks_->chunk_size());
  compress::TimestampDecoder ts_dec;
  std::vector<std::unique_ptr<compress::BitReader>> col_readers;
  std::vector<compress::NullableValueDecoder> col_decs(columns_.size());
  for (const Column& c : columns_) {
    col_readers.push_back(c.valid
                              ? std::make_unique<compress::BitReader>(
                                    val_chunks_->ChunkData(c.slot),
                                    val_chunks_->chunk_size())
                              : nullptr);
  }
  rows->resize(open_count_);
  for (uint32_t i = 0; i < open_count_; ++i) {
    compress::GroupRow& row = (*rows)[i];
    row.timestamp = ts_dec.Next(&ts_reader);
    row.values.resize(columns_.size());
    for (size_t m = 0; m < columns_.size(); ++m) {
      if (!col_readers[m]) {
        row.values[m] = std::nullopt;
        continue;
      }
      double v;
      if (col_decs[m].Next(col_readers[m].get(), &v)) {
        row.values[m] = v;
      } else {
        row.values[m] = std::nullopt;
      }
    }
  }
  return Status::OK();
}

Status GroupHead::ReencodeOpen(const std::vector<compress::GroupRow>& rows) {
  const int64_t partition_end = partition_end_;
  ReleaseOpen();
  TU_RETURN_IF_ERROR(EnsureOpen(partition_end));
  for (size_t m = 0; m < members_.size(); ++m) {
    TU_RETURN_IF_ERROR(EnsureColumn(m));
  }
  for (const compress::GroupRow& row : rows) {
    if (!RowFits()) {
      // Merged rows outgrew the slots: stage the whole merged chunk as an
      // overflow flush (mirrors SeriesHead::MergeIntoOpen).
      ReleaseOpen();
      std::vector<compress::GroupRow> full = rows;
      for (compress::GroupRow& r : full) r.values.resize(members_.size());
      compress::EncodeGroupChunk(seq_id_,
                                 static_cast<uint32_t>(members_.size()), full,
                                 &overflow_payload_);
      overflow_first_ts_ = rows.front().timestamp;
      has_overflow_ = true;
      return Status::OK();
    }
    if (open_count_ == 0) first_ts_ = row.timestamp;
    ts_encoder_.Append(ts_writer_.get(), row.timestamp);
    for (size_t m = 0; m < members_.size(); ++m) {
      Column& c = columns_[m];
      if (m < row.values.size() && row.values[m].has_value()) {
        c.encoder.AppendValue(c.writer.get(), *row.values[m]);
      } else {
        c.encoder.AppendNull(c.writer.get());
      }
    }
    ++open_count_;
  }
  return Status::OK();
}

Status GroupHead::MergeRowIntoOpen(
    int64_t ts, const std::vector<std::optional<double>>& row_values,
    AppendResult* result) {
  std::vector<compress::GroupRow> rows;
  TU_RETURN_IF_ERROR(DecodeOpen(&rows));
  auto it = std::lower_bound(rows.begin(), rows.end(), ts,
                             [](const compress::GroupRow& r, int64_t t) {
                               return r.timestamp < t;
                             });
  bool replaced = false;
  if (it != rows.end() && it->timestamp == ts) {
    // Same-timestamp row: overwrite the provided members, keep the rest.
    it->values.resize(members_.size());
    for (size_t m = 0; m < row_values.size(); ++m) {
      if (row_values[m].has_value()) it->values[m] = row_values[m];
    }
    replaced = true;
  } else {
    compress::GroupRow row;
    row.timestamp = ts;
    row.values = row_values;
    row.values.resize(members_.size());
    rows.insert(it, std::move(row));
  }
  TU_RETURN_IF_ERROR(ReencodeOpen(rows));
  if (has_overflow_) {
    *result = AppendResult::kChunkClosed;  // caller must CloseChunk
  } else {
    *result = replaced ? AppendResult::kDuplicate : AppendResult::kOk;
  }
  return Status::OK();
}

Status GroupHead::InsertRow(int64_t ts,
                            const std::vector<uint32_t>& member_indexes,
                            const std::vector<double>& values,
                            int64_t partition_end, AppendResult* result,
                            bool* too_old) {
  *too_old = false;
  ++seq_id_;

  std::vector<std::optional<double>> row_values(members_.size());
  for (size_t i = 0; i < member_indexes.size(); ++i) {
    row_values[member_indexes[i]] = values[i];
  }

  if (open_count_ > 0) {
    if (ts < first_ts_) {
      *too_old = true;
      *result = AppendResult::kNeedsFlush;
      return Status::OK();
    }
    if (ts <= last_ts_) {
      Status s = MergeRowIntoOpen(ts, row_values, result);
      if (s.ok() && ts > last_ts_) last_ts_ = ts;
      return s;
    }
    if (ts >= partition_end_ || !RowFits()) {
      *result = AppendResult::kNeedsFlush;
      return Status::OK();
    }
  }

  TU_RETURN_IF_ERROR(EnsureOpen(partition_end));
  if (open_count_ == 0) {
    first_ts_ = ts;
    partition_end_ = partition_end;
  }
  ts_encoder_.Append(ts_writer_.get(), ts);
  for (size_t m = 0; m < members_.size(); ++m) {
    TU_RETURN_IF_ERROR(EnsureColumn(m));
    Column& c = columns_[m];
    if (row_values[m].has_value()) {
      c.encoder.AppendValue(c.writer.get(), *row_values[m]);
    } else {
      c.encoder.AppendNull(c.writer.get());
    }
  }
  ++open_count_;
  if (ts > last_ts_) last_ts_ = ts;

  *result = (open_count_ >= samples_per_chunk_) ? AppendResult::kChunkClosed
                                                : AppendResult::kOk;
  return Status::OK();
}

bool GroupHead::CloseChunk(std::string* payload, int64_t* first_ts) {
  if (has_overflow_) {
    *payload = std::move(overflow_payload_);
    *first_ts = overflow_first_ts_;
    overflow_payload_.clear();
    has_overflow_ = false;
    return true;
  }
  if (open_count_ == 0) {
    ReleaseOpen();
    return false;
  }
  std::vector<std::pair<const char*, size_t>> cols;
  cols.reserve(columns_.size());
  for (const Column& c : columns_) {
    if (c.valid) {
      cols.emplace_back(val_chunks_->ChunkData(c.slot), c.writer->BytesUsed());
    } else {
      cols.emplace_back(nullptr, 0);
    }
  }
  // Columns that were never opened encode open_count_ NULLs lazily: a
  // zero-length column is decoded as all-NULL by convention. To keep the
  // format self-contained we materialize them here instead.
  std::vector<std::string> null_cols(columns_.size());
  for (size_t m = 0; m < columns_.size(); ++m) {
    if (cols[m].first == nullptr) {
      null_cols[m].resize((open_count_ + 7) / 8 + 1, '\0');
      compress::BitWriter w(null_cols[m].data(), null_cols[m].size());
      compress::NullableValueEncoder enc;
      for (uint32_t i = 0; i < open_count_; ++i) enc.AppendNull(&w);
      cols[m] = {null_cols[m].data(), w.BytesUsed()};
    }
  }
  compress::SerializeGroupChunk(seq_id_, open_count_,
                                ts_chunks_->ChunkData(ts_slot_),
                                ts_writer_->BytesUsed(), cols, payload);
  *first_ts = first_ts_;
  ReleaseOpen();
  return true;
}

Status GroupHead::SnapshotMember(uint32_t member_index,
                                 std::vector<compress::Sample>* samples) const {
  samples->clear();
  if (open_count_ == 0 || member_index >= columns_.size()) return Status::OK();
  std::vector<compress::GroupRow> rows;
  TU_RETURN_IF_ERROR(DecodeOpen(&rows));
  for (const compress::GroupRow& row : rows) {
    if (row.values[member_index].has_value()) {
      samples->push_back(
          compress::Sample{row.timestamp, *row.values[member_index]});
    }
  }
  return Status::OK();
}

Status GroupHead::SnapshotMember(uint32_t member_index, int64_t t0, int64_t t1,
                                 std::vector<compress::Sample>* samples) const {
  TU_RETURN_IF_ERROR(SnapshotMember(member_index, samples));
  std::erase_if(*samples, [t0, t1](const compress::Sample& s) {
    return s.timestamp < t0 || s.timestamp > t1;
  });
  return Status::OK();
}

}  // namespace tu::mem
