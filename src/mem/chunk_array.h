// ChunkArray: the mmap file arrays for data samples (Fig. 9). Each mmap
// file starts with an allocation bitmap header followed by fixed-size
// chunks holding compressed sample bytes. Freed areas are reused; the
// arrays grow by mapping new files. Because the backing is file mmap, the
// OS can swap these pages instead of OOM-killing the process (§3.2).
//
// Thread safety: all methods are safe to call concurrently. An internal
// mutex guards the file table and allocation bitmaps (growth appends a
// new mmap file, which reallocates `files_`). Chunk payload addresses are
// stable for the lifetime of the array — each file's mapping never moves —
// so callers may cache the pointer returned by ChunkData() and read/write
// the payload under their own (per-head) synchronization.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/bitmap.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace tu::mem {

class ChunkArray {
 public:
  /// Chunks are `chunk_size` bytes; each mmap file holds `chunks_per_file`
  /// of them plus the bitmap header.
  ChunkArray(std::string dir, std::string name, size_t chunk_size,
             size_t chunks_per_file = 4096);
  ~ChunkArray();

  ChunkArray(const ChunkArray&) = delete;
  ChunkArray& operator=(const ChunkArray&) = delete;

  /// Allocates a chunk; returns its stable slot id.
  Status Allocate(uint64_t* slot);

  /// Returns a freed slot to the free pool and zeroes its bitmap bit
  /// ("the corresponding area of the mmap file will be cleaned", §3.2).
  void Free(uint64_t slot);

  /// Pointer to the chunk payload (chunk_size bytes, stable address).
  char* ChunkData(uint64_t slot);
  const char* ChunkData(uint64_t slot) const;

  size_t chunk_size() const { return chunk_size_; }
  uint64_t allocated_chunks() const {
    return allocated_.load(std::memory_order_relaxed);
  }

  /// Bytes of payload currently allocated (memory accounting).
  uint64_t MemoryUsage() const { return allocated_chunks() * chunk_size_; }

  Status Sync();
  void AdviseDontNeed();

 private:
  struct File {
    std::unique_ptr<MmapFile> mmap;
    std::unique_ptr<Bitmap> bitmap;  // borrows the mmap header
  };

  Status AddFile();                           // requires mu_
  char* ChunkDataLocked(uint64_t slot) const;  // requires mu_

  std::string dir_;
  std::string name_;
  size_t chunk_size_;
  size_t chunks_per_file_;
  size_t header_bytes_;

  mutable std::mutex mu_;
  std::vector<File> files_;
  std::atomic<uint64_t> allocated_{0};
  size_t alloc_hint_file_ = 0;
};

}  // namespace tu::mem
