// Postings lists: sorted u64 ID lists with union/intersection, the value
// side of the inverted index. With grouping, postings entries are group IDs
// instead of series IDs, which is what shrinks them (§2.4 challenge 3).
#pragma once

#include <cstdint>
#include <vector>

namespace tu::index {

using Postings = std::vector<uint64_t>;

/// Inserts `id` keeping the list sorted and deduplicated.
void PostingsInsert(Postings* postings, uint64_t id);

/// Removes `id` if present.
void PostingsRemove(Postings* postings, uint64_t id);

/// Sorted-list intersection.
Postings PostingsIntersect(const Postings& a, const Postings& b);

/// Sorted-list union.
Postings PostingsUnion(const Postings& a, const Postings& b);

/// Intersection across many lists (empty input -> empty result).
Postings PostingsIntersectAll(const std::vector<const Postings*>& lists);

}  // namespace tu::index
