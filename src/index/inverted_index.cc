#include "index/inverted_index.h"

#include <algorithm>

#include "util/memory_tracker.h"

namespace tu::index {

InvertedIndex::InvertedIndex(std::string dir, std::string name,
                             TrieOptions trie_options)
    : trie_(std::move(dir), std::move(name), trie_options) {}

InvertedIndex::~InvertedIndex() {
  MemoryTracker::Global().Sub(MemCategory::kInvertedIndex,
                              static_cast<int64_t>(postings_bytes_));
}

Status InvertedIndex::Init() { return trie_.Init(); }

Status InvertedIndex::GetOrCreateList(const std::string& trie_key,
                                      uint64_t* list_id) {
  Status s = trie_.Lookup(trie_key, list_id);
  if (s.ok()) return s;
  if (!s.IsNotFound()) return s;
  const uint64_t before = trie_.MemoryUsage();
  *list_id = lists_.size();
  lists_.emplace_back();
  TU_RETURN_IF_ERROR(trie_.Insert(trie_key, *list_id));
  MemoryTracker::Global().Add(
      MemCategory::kInvertedIndex,
      static_cast<int64_t>(trie_.MemoryUsage() - before));
  return Status::OK();
}

Status InvertedIndex::Add(uint64_t id, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Label& l : labels) {
    uint64_t list_id = 0;
    TU_RETURN_IF_ERROR(GetOrCreateList(l.Joined(), &list_id));
    Postings& p = lists_[list_id];
    const size_t before = p.capacity();
    PostingsInsert(&p, id);
    const int64_t delta =
        static_cast<int64_t>((p.capacity() - before) * sizeof(uint64_t));
    postings_bytes_ += delta;
    MemoryTracker::Global().Add(MemCategory::kInvertedIndex, delta);
  }
  return Status::OK();
}

Status InvertedIndex::Remove(uint64_t id, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Label& l : labels) {
    uint64_t list_id = 0;
    Status s = trie_.Lookup(l.Joined(), &list_id);
    if (s.IsNotFound()) continue;
    TU_RETURN_IF_ERROR(s);
    PostingsRemove(&lists_[list_id], id);
  }
  return Status::OK();
}

Status InvertedIndex::GetPostings(const std::string& name,
                                  const std::string& value,
                                  Postings* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out->clear();
  uint64_t list_id = 0;
  Status s = trie_.Lookup(name + kTagDelim + value, &list_id);
  if (s.IsNotFound()) return Status::OK();
  TU_RETURN_IF_ERROR(s);
  *out = lists_[list_id];
  return Status::OK();
}

Status InvertedIndex::SelectOne(const TagMatcher& m, Postings* out) const {
  out->clear();
  if (m.type == TagMatcher::Type::kEqual) {
    uint64_t list_id = 0;
    Status s = trie_.Lookup(m.name + kTagDelim + m.value, &list_id);
    if (s.IsNotFound()) return Status::OK();
    TU_RETURN_IF_ERROR(s);
    *out = lists_[list_id];
    return Status::OK();
  }
  // Regex: scan all tag pairs of this name and union matching postings.
  std::regex re;
  try {
    re = std::regex(m.value);
  } catch (const std::regex_error&) {
    return Status::InvalidArgument("bad regex: " + m.value);
  }
  const std::string prefix = m.name + kTagDelim;
  Postings merged;
  Status scan_status = trie_.ScanPrefix(
      prefix, [&](const std::string& key, uint64_t list_id) {
        const std::string value = key.substr(prefix.size());
        if (std::regex_match(value, re)) {
          merged = PostingsUnion(merged, lists_[list_id]);
        }
        return true;
      });
  TU_RETURN_IF_ERROR(scan_status);
  *out = std::move(merged);
  return Status::OK();
}

Status InvertedIndex::Select(const std::vector<TagMatcher>& matchers,
                             Postings* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out->clear();
  if (matchers.empty()) return Status::OK();
  std::vector<Postings> per_matcher(matchers.size());
  for (size_t i = 0; i < matchers.size(); ++i) {
    TU_RETURN_IF_ERROR(SelectOne(matchers[i], &per_matcher[i]));
    if (per_matcher[i].empty()) return Status::OK();  // empty intersection
  }
  std::vector<const Postings*> ptrs;
  ptrs.reserve(per_matcher.size());
  for (const Postings& p : per_matcher) ptrs.push_back(&p);
  *out = PostingsIntersectAll(ptrs);
  return Status::OK();
}

Status InvertedIndex::TagValues(const std::string& name,
                                std::vector<std::string>* values) const {
  std::lock_guard<std::mutex> lock(mu_);
  values->clear();
  const std::string prefix = name + kTagDelim;
  TU_RETURN_IF_ERROR(trie_.ScanPrefix(
      prefix, [&](const std::string& key, uint64_t) {
        values->push_back(key.substr(prefix.size()));
        return true;
      }));
  std::sort(values->begin(), values->end());
  return Status::OK();
}

uint64_t InvertedIndex::NumTagPairs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trie_.num_keys();
}

uint64_t InvertedIndex::MemoryUsage() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trie_.MemoryUsage() + postings_bytes_;
}

Status InvertedIndex::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return trie_.Sync();
}

void InvertedIndex::AdviseDontNeed() {
  std::lock_guard<std::mutex> lock(mu_);
  trie_.AdviseDontNeed();
}

}  // namespace tu::index
