#include "index/double_array_trie.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "util/coding.h"

namespace tu::index {

namespace {

size_t CommonPrefix(const Slice& a, const Slice& b) {
  const size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace

DoubleArrayTrie::DoubleArrayTrie(std::string dir, std::string name,
                                 TrieOptions options)
    : options_(options) {
  const size_t slot_file_bytes = options_.slots_per_file * sizeof(int32_t);
  base_ = std::make_unique<MmapFileArray>(dir, name + ".base", slot_file_bytes);
  check_ = std::make_unique<MmapFileArray>(dir, name + ".check", slot_file_bytes);
  tail_ = std::make_unique<MmapFileArray>(dir, name + ".tail",
                                          options_.tail_file_bytes);
}

DoubleArrayTrie::~DoubleArrayTrie() = default;

Status DoubleArrayTrie::Init() {
  TU_RETURN_IF_ERROR(EnsureState(kRoot + kMaxCode));
  TU_RETURN_IF_ERROR(tail_->Reserve(1));
  CheckAt(kRoot) = kRoot;  // mark the root slot occupied
  used_states_ = 1;
  return Status::OK();
}

int32_t& DoubleArrayTrie::BaseAt(int32_t s) {
  return *reinterpret_cast<int32_t*>(base_->At(static_cast<size_t>(s) * 4));
}

int32_t& DoubleArrayTrie::CheckAt(int32_t s) {
  return *reinterpret_cast<int32_t*>(check_->At(static_cast<size_t>(s) * 4));
}

int32_t DoubleArrayTrie::BaseAt(int32_t s) const {
  return *reinterpret_cast<const int32_t*>(
      base_->At(static_cast<size_t>(s) * 4));
}

int32_t DoubleArrayTrie::CheckAt(int32_t s) const {
  return *reinterpret_cast<const int32_t*>(
      check_->At(static_cast<size_t>(s) * 4));
}

Status DoubleArrayTrie::EnsureState(int32_t s) {
  const size_t needed = (static_cast<size_t>(s) + 1) * sizeof(int32_t);
  if (needed > base_->capacity()) {
    TU_RETURN_IF_ERROR(base_->Reserve(needed));
    TU_RETURN_IF_ERROR(check_->Reserve(needed));
  }
  max_state_ = static_cast<int32_t>(base_->capacity() / sizeof(int32_t)) - 1;
  return Status::OK();
}

Status DoubleArrayTrie::AppendTail(const Slice& suffix, uint64_t value,
                                   int64_t* offset) {
  std::string entry;
  PutVarint32(&entry, static_cast<uint32_t>(suffix.size()));
  entry.append(suffix.data(), suffix.size());
  PutFixed64(&entry, value);

  *offset = tail_pos_;
  TU_RETURN_IF_ERROR(tail_->Reserve(static_cast<size_t>(tail_pos_) + entry.size()));
  // Entries may cross mmap file boundaries; copy piecewise.
  size_t written = 0;
  while (written < entry.size()) {
    const size_t off = static_cast<size_t>(tail_pos_) + written;
    const size_t room = tail_->file_size() - off % tail_->file_size();
    const size_t n = std::min(entry.size() - written, room);
    memcpy(tail_->At(off), entry.data() + written, n);
    written += n;
  }
  tail_pos_ += static_cast<int64_t>(entry.size());
  return Status::OK();
}

void DoubleArrayTrie::ReadTail(int64_t offset, std::string* suffix,
                               uint64_t* value) const {
  // Read the varint length byte-by-byte (crossing file boundaries safely).
  size_t off = static_cast<size_t>(offset);
  uint32_t len = 0;
  for (uint32_t shift = 0;; shift += 7) {
    const uint8_t byte = static_cast<uint8_t>(*tail_->At(off++));
    len |= static_cast<uint32_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) break;
  }
  suffix->resize(len);
  for (uint32_t i = 0; i < len; ++i) (*suffix)[i] = *tail_->At(off++);
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = *tail_->At(off++);
  *value = DecodeFixed64(buf);
}

void DoubleArrayTrie::WriteTailValue(int64_t offset, uint64_t value) {
  size_t off = static_cast<size_t>(offset);
  uint32_t len = 0;
  for (uint32_t shift = 0;; shift += 7) {
    const uint8_t byte = static_cast<uint8_t>(*tail_->At(off++));
    len |= static_cast<uint32_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) break;
  }
  off += len;
  char buf[8];
  EncodeFixed64(buf, value);
  for (int i = 0; i < 8; ++i) *tail_->At(off++) = buf[i];
}

Status DoubleArrayTrie::FindBase(const int32_t* codes, int n,
                                 int32_t* out_base) {
  // Advance the free-slot hint past occupied slots.
  while (next_check_pos_ <= max_state_ &&
         (next_check_pos_ == kRoot || CheckAt(next_check_pos_) != 0)) {
    ++next_check_pos_;
  }
  int32_t min_code = codes[0], max_code = codes[0];
  for (int i = 1; i < n; ++i) {
    min_code = std::min(min_code, codes[i]);
    max_code = std::max(max_code, codes[i]);
  }
  int32_t b = next_check_pos_ - min_code;
  if (b < 1) b = 1;
  for (;; ++b) {
    bool ok = true;
    for (int i = 0; i < n; ++i) {
      const int32_t t = b + codes[i];
      if (t == kRoot) {
        ok = false;
        break;
      }
      if (t <= max_state_ && CheckAt(t) != 0) {
        ok = false;
        break;
      }
    }
    if (ok) {
      TU_RETURN_IF_ERROR(EnsureState(b + max_code));
      *out_base = b;
      return Status::OK();
    }
  }
}

Status DoubleArrayTrie::MakeLeaf(int32_t parent, int32_t code,
                                 const Slice& suffix, uint64_t value) {
  const int32_t t = BaseAt(parent) + code;
  TU_RETURN_IF_ERROR(EnsureState(t));
  assert(CheckAt(t) == 0);
  CheckAt(t) = parent;
  ++used_states_;
  int64_t off = 0;
  TU_RETURN_IF_ERROR(AppendTail(suffix, value, &off));
  BaseAt(t) = static_cast<int32_t>(-(off + 1));
  return Status::OK();
}

Status DoubleArrayTrie::Relocate(int32_t s, int32_t extra_code) {
  // Collect the existing child codes of s.
  int32_t codes[kMaxCode + 1];
  int n = 0;
  const int32_t old_base = BaseAt(s);
  for (int32_t c = 1; c <= kMaxCode; ++c) {
    const int32_t t = old_base + c;
    if (t >= 2 && t <= max_state_ && CheckAt(t) == s) codes[n++] = c;
  }
  codes[n] = extra_code;

  int32_t new_base = 0;
  TU_RETURN_IF_ERROR(FindBase(codes, n + 1, &new_base));

  for (int i = 0; i < n; ++i) {
    const int32_t c = codes[i];
    const int32_t old_t = old_base + c;
    const int32_t new_t = new_base + c;
    CheckAt(new_t) = s;
    BaseAt(new_t) = BaseAt(old_t);
    // Grandchildren still point at old_t; repoint them.
    if (BaseAt(old_t) > 0) {
      const int32_t child_base = BaseAt(old_t);
      for (int32_t e = 1; e <= kMaxCode; ++e) {
        const int32_t g = child_base + e;
        if (g >= 2 && g <= max_state_ && CheckAt(g) == old_t) {
          CheckAt(g) = new_t;
        }
      }
    }
    CheckAt(old_t) = 0;
    BaseAt(old_t) = 0;
  }
  BaseAt(s) = new_base;
  return Status::OK();
}

Status DoubleArrayTrie::SplitLeaf(int32_t s, const Slice& remaining,
                                  uint64_t value) {
  const int64_t old_off = -(static_cast<int64_t>(BaseAt(s)) + 1);
  std::string old_suffix;
  uint64_t old_value = 0;
  ReadTail(old_off, &old_suffix, &old_value);

  if (Slice(old_suffix) == remaining) {
    WriteTailValue(old_off, value);  // same key: overwrite
    return Status::OK();
  }

  // Convert s from leaf to the head of an internal chain covering the
  // common prefix of the old suffix and the new remaining key.
  const size_t p = CommonPrefix(Slice(old_suffix), remaining);
  int32_t cur = s;
  for (size_t j = 0; j < p; ++j) {
    const int32_t code = Code(static_cast<uint8_t>(old_suffix[j]));
    int32_t b = 0;
    TU_RETURN_IF_ERROR(FindBase(&code, 1, &b));
    BaseAt(cur) = b;
    const int32_t t = b + code;
    CheckAt(t) = cur;
    BaseAt(t) = 0;
    ++used_states_;
    cur = t;
  }

  const int32_t code_old = p < old_suffix.size()
                               ? Code(static_cast<uint8_t>(old_suffix[p]))
                               : kEndCode;
  const int32_t code_new =
      p < remaining.size() ? Code(static_cast<uint8_t>(remaining[p])) : kEndCode;
  assert(code_old != code_new);
  const int32_t branch_codes[2] = {code_old, code_new};
  int32_t b = 0;
  TU_RETURN_IF_ERROR(FindBase(branch_codes, 2, &b));
  BaseAt(cur) = b;

  const Slice old_rest =
      p < old_suffix.size()
          ? Slice(old_suffix.data() + p + 1, old_suffix.size() - p - 1)
          : Slice();
  const Slice new_rest = p < remaining.size()
                             ? Slice(remaining.data() + p + 1,
                                     remaining.size() - p - 1)
                             : Slice();
  TU_RETURN_IF_ERROR(MakeLeaf(cur, code_old, old_rest, old_value));
  TU_RETURN_IF_ERROR(MakeLeaf(cur, code_new, new_rest, value));
  ++num_keys_;
  return Status::OK();
}

Status DoubleArrayTrie::Insert(const Slice& key, uint64_t value) {
  int32_t s = kRoot;
  for (size_t i = 0; i <= key.size(); ++i) {
    if (s != kRoot && BaseAt(s) < 0) {
      return SplitLeaf(s, Slice(key.data() + i, key.size() - i), value);
    }
    const int32_t code =
        i < key.size() ? Code(static_cast<uint8_t>(key[i])) : kEndCode;
    const Slice suffix_after = i < key.size()
                                   ? Slice(key.data() + i + 1, key.size() - i - 1)
                                   : Slice();
    if (BaseAt(s) == 0) {
      // No children yet (fresh root/internal).
      int32_t b = 0;
      TU_RETURN_IF_ERROR(FindBase(&code, 1, &b));
      BaseAt(s) = b;
      TU_RETURN_IF_ERROR(MakeLeaf(s, code, suffix_after, value));
      ++num_keys_;
      return Status::OK();
    }
    int32_t t = BaseAt(s) + code;
    TU_RETURN_IF_ERROR(EnsureState(t));
    if (CheckAt(t) == 0 && t != kRoot) {
      TU_RETURN_IF_ERROR(MakeLeaf(s, code, suffix_after, value));
      ++num_keys_;
      return Status::OK();
    }
    if (CheckAt(t) != s) {
      TU_RETURN_IF_ERROR(Relocate(s, code));
      TU_RETURN_IF_ERROR(MakeLeaf(s, code, suffix_after, value));
      ++num_keys_;
      return Status::OK();
    }
    // Child exists.
    if (i == key.size()) {
      // End-transition to an existing terminal leaf: same key, overwrite.
      assert(BaseAt(t) < 0);
      WriteTailValue(-(static_cast<int64_t>(BaseAt(t)) + 1), value);
      return Status::OK();
    }
    s = t;
  }
  return Status::OK();  // unreachable
}

Status DoubleArrayTrie::Lookup(const Slice& key, uint64_t* value) const {
  int32_t s = kRoot;
  for (size_t i = 0; i <= key.size(); ++i) {
    if (s != kRoot && BaseAt(s) < 0) {
      std::string suffix;
      uint64_t v = 0;
      ReadTail(-(static_cast<int64_t>(BaseAt(s)) + 1), &suffix, &v);
      if (Slice(suffix) == Slice(key.data() + i, key.size() - i)) {
        *value = v;
        return Status::OK();
      }
      return Status::NotFound();
    }
    if (BaseAt(s) <= 0) return Status::NotFound();
    const int32_t code =
        i < key.size() ? Code(static_cast<uint8_t>(key[i])) : kEndCode;
    const int32_t t = BaseAt(s) + code;
    if (t > max_state_ || CheckAt(t) != s) return Status::NotFound();
    if (i == key.size()) {
      // Terminal leaf via end transition.
      std::string suffix;
      uint64_t v = 0;
      ReadTail(-(static_cast<int64_t>(BaseAt(t)) + 1), &suffix, &v);
      if (!suffix.empty()) return Status::NotFound();
      *value = v;
      return Status::OK();
    }
    s = t;
  }
  return Status::NotFound();
}

bool DoubleArrayTrie::ScanNode(
    int32_t s, std::string* key_buf,
    const std::function<bool(const std::string&, uint64_t)>& fn) const {
  if (s != kRoot && BaseAt(s) < 0) {
    std::string suffix;
    uint64_t v = 0;
    ReadTail(-(static_cast<int64_t>(BaseAt(s)) + 1), &suffix, &v);
    const size_t old = key_buf->size();
    key_buf->append(suffix);
    const bool cont = fn(*key_buf, v);
    key_buf->resize(old);
    return cont;
  }
  if (BaseAt(s) <= 0) return true;  // childless internal (shouldn't happen)
  const int32_t base = BaseAt(s);
  for (int32_t code = 1; code <= kMaxCode; ++code) {
    const int32_t t = base + code;
    if (t < 2 || t > max_state_ || CheckAt(t) != s) continue;
    if (code == kEndCode) {
      std::string suffix;
      uint64_t v = 0;
      ReadTail(-(static_cast<int64_t>(BaseAt(t)) + 1), &suffix, &v);
      if (!fn(*key_buf, v)) return false;
    } else {
      key_buf->push_back(static_cast<char>(code - 2));
      const bool cont = ScanNode(t, key_buf, fn);
      key_buf->pop_back();
      if (!cont) return false;
    }
  }
  return true;
}

Status DoubleArrayTrie::ScanPrefix(
    const Slice& prefix,
    const std::function<bool(const std::string&, uint64_t)>& fn) const {
  int32_t s = kRoot;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (s != kRoot && BaseAt(s) < 0) {
      // Leaf reached mid-prefix: the single key below matches iff its
      // suffix continues the prefix.
      std::string suffix;
      uint64_t v = 0;
      ReadTail(-(static_cast<int64_t>(BaseAt(s)) + 1), &suffix, &v);
      const Slice rest(prefix.data() + i, prefix.size() - i);
      if (Slice(suffix).starts_with(rest)) {
        std::string key(prefix.data(), i);
        key.append(suffix);
        fn(key, v);
      }
      return Status::OK();
    }
    if (BaseAt(s) <= 0) return Status::OK();
    const int32_t code = Code(static_cast<uint8_t>(prefix[i]));
    const int32_t t = BaseAt(s) + code;
    if (t > max_state_ || CheckAt(t) != s) return Status::OK();
    s = t;
  }
  std::string key_buf = prefix.ToString();
  ScanNode(s, &key_buf, fn);
  return Status::OK();
}

uint64_t DoubleArrayTrie::MemoryUsage() const {
  return static_cast<uint64_t>(used_states_) * 8 +
         static_cast<uint64_t>(tail_pos_);
}

Status DoubleArrayTrie::Sync() {
  TU_RETURN_IF_ERROR(base_->Sync());
  TU_RETURN_IF_ERROR(check_->Sync());
  return tail_->Sync();
}

void DoubleArrayTrie::AdviseDontNeed() {
  base_->AdviseDontNeed();
  check_->AdviseDontNeed();
  tail_->AdviseDontNeed();
}

}  // namespace tu::index
