// Labels: the tag-pair identifier vocabulary of the unified data model
// (§3.1). A timeseries identifier is a sorted set of tag pairs; a group is
// identified by its shared group tags, and members by their unique tags.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

namespace tu::index {

/// The delimiter used to concatenate tag key and value into one trie key
/// (Fig. 8 uses '$').
constexpr char kTagDelim = '$';

/// One tag pair.
struct Label {
  std::string name;
  std::string value;

  bool operator==(const Label&) const = default;
  auto operator<=>(const Label&) const = default;

  /// "name$value" trie key.
  std::string Joined() const { return name + kTagDelim + value; }
};

/// A sorted set of tag pairs identifying one timeseries (or the shared
/// tags of a group).
using Labels = std::vector<Label>;

/// Sorts by name (then value); identifiers compare bytewise afterwards.
inline void SortLabels(Labels* labels) {
  std::sort(labels->begin(), labels->end());
}

/// Canonical string form "k1$v1,k2$v2,..." of a sorted label set; used as a
/// dedup key for series/group identity.
std::string LabelsKey(const Labels& labels);

/// Splits `labels` into (group tags ∩ labels, labels − group tags): the
/// §3.1 transition from a flat tag set to group representation. Returns
/// false if any requested group tag is missing from `labels`.
bool ExtractGroupTags(const Labels& labels, const std::vector<std::string>& group_tag_names,
                      Labels* group_tags, Labels* unique_tags);

}  // namespace tu::index
