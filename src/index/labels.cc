#include "index/labels.h"

namespace tu::index {

std::string LabelsKey(const Labels& labels) {
  std::string key;
  for (const Label& l : labels) {
    if (!key.empty()) key += ',';
    key += l.name;
    key += kTagDelim;
    key += l.value;
  }
  return key;
}

bool ExtractGroupTags(const Labels& labels,
                      const std::vector<std::string>& group_tag_names,
                      Labels* group_tags, Labels* unique_tags) {
  group_tags->clear();
  unique_tags->clear();
  for (const Label& l : labels) {
    const bool is_group =
        std::find(group_tag_names.begin(), group_tag_names.end(), l.name) !=
        group_tag_names.end();
    if (is_group) {
      group_tags->push_back(l);
    } else {
      unique_tags->push_back(l);
    }
  }
  return group_tags->size() == group_tag_names.size();
}

}  // namespace tu::index
