// TagStore: §3.2 "Timeseries tags" — per-series/group tag sets serialized
// into growable mmap file arrays so millions of identifiers don't pin RAM.
// Append-only; each Append returns a stable offset kept in the head object.
//
// Thread safety: NOT internally synchronized. TimeUnionDB serializes all
// access behind its registration mutex (registration is the only writer;
// Append may grow the backing file chain, which reallocates the internal
// file table, so even Read must not race with it).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "index/labels.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace tu::index {

class TagStore {
 public:
  TagStore(std::string dir, std::string name, size_t file_bytes = 4 << 20);

  /// Serializes `labels` into the store; returns the entry offset.
  Status Append(const Labels& labels, uint64_t* offset);

  /// Reads the entry at `offset`.
  Status Read(uint64_t offset, Labels* labels) const;

  /// Bytes appended so far (memory-accounting figure).
  uint64_t BytesUsed() const { return pos_; }

  Status Sync() { return array_.Sync(); }
  void AdviseDontNeed() { array_.AdviseDontNeed(); }

 private:
  MmapFileArray array_;
  uint64_t pos_ = 0;
};

}  // namespace tu::index
