#include "index/tag_store.h"

#include "util/coding.h"

namespace tu::index {

TagStore::TagStore(std::string dir, std::string name, size_t file_bytes)
    : array_(std::move(dir), std::move(name), file_bytes) {}

Status TagStore::Append(const Labels& labels, uint64_t* offset) {
  std::string entry;
  PutVarint32(&entry, static_cast<uint32_t>(labels.size()));
  for (const Label& l : labels) {
    PutLengthPrefixedSlice(&entry, l.name);
    PutLengthPrefixedSlice(&entry, l.value);
  }
  // Prefix the entry with its own length so Read doesn't need an external
  // size.
  std::string framed;
  PutVarint32(&framed, static_cast<uint32_t>(entry.size()));
  framed += entry;

  *offset = pos_;
  TU_RETURN_IF_ERROR(array_.Reserve(pos_ + framed.size()));
  array_.WriteBytes(pos_, framed.data(), framed.size());
  pos_ += framed.size();
  return Status::OK();
}

Status TagStore::Read(uint64_t offset, Labels* labels) const {
  labels->clear();
  // Read the frame length (varint, up to 5 bytes).
  char len_buf[5];
  const size_t avail = std::min<size_t>(5, pos_ - offset);
  array_.ReadBytes(offset, avail, len_buf);
  uint32_t entry_len = 0;
  const char* p = GetVarint32Ptr(len_buf, len_buf + avail, &entry_len);
  if (p == nullptr) return Status::Corruption("tag store: bad frame length");
  const size_t header = static_cast<size_t>(p - len_buf);

  std::string entry(entry_len, '\0');
  array_.ReadBytes(offset + header, entry_len, entry.data());
  Slice in(entry);
  uint32_t count = 0;
  if (!GetVarint32(&in, &count)) return Status::Corruption("tag store: count");
  labels->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Slice name, value;
    if (!GetLengthPrefixedSlice(&in, &name) ||
        !GetLengthPrefixedSlice(&in, &value)) {
      return Status::Corruption("tag store: label");
    }
    labels->push_back(Label{name.ToString(), value.ToString()});
  }
  return Status::OK();
}

}  // namespace tu::index
