#include "index/postings.h"

#include <algorithm>

namespace tu::index {

void PostingsInsert(Postings* postings, uint64_t id) {
  auto it = std::lower_bound(postings->begin(), postings->end(), id);
  if (it == postings->end() || *it != id) postings->insert(it, id);
}

void PostingsRemove(Postings* postings, uint64_t id) {
  auto it = std::lower_bound(postings->begin(), postings->end(), id);
  if (it != postings->end() && *it == id) postings->erase(it);
}

Postings PostingsIntersect(const Postings& a, const Postings& b) {
  Postings out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

Postings PostingsUnion(const Postings& a, const Postings& b) {
  Postings out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

Postings PostingsIntersectAll(const std::vector<const Postings*>& lists) {
  if (lists.empty()) return {};
  Postings result = *lists[0];
  for (size_t i = 1; i < lists.size() && !result.empty(); ++i) {
    result = PostingsIntersect(result, *lists[i]);
  }
  return result;
}

}  // namespace tu::index
