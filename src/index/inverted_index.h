// InvertedIndex: the single global in-memory inverted index of §3.2 —
// tag pairs indexed by a double-array trie on mmap file arrays, mapping to
// postings lists of series/group IDs. Replaces Prometheus' per-partition
// nested hash tables (the 51%-of-memory culprit of Fig. 3b).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <regex>
#include <string>
#include <vector>

#include "index/double_array_trie.h"
#include "index/labels.h"
#include "index/postings.h"
#include "util/status.h"

namespace tu::index {

/// A tag selector of the Get API (§3.4): exact or regular-expression match
/// on one tag name.
struct TagMatcher {
  enum class Type { kEqual, kRegex };

  Type type = Type::kEqual;
  std::string name;
  std::string value;  // literal, or ECMAScript regex for kRegex

  static TagMatcher Equal(std::string name, std::string value) {
    return TagMatcher{Type::kEqual, std::move(name), std::move(value)};
  }
  static TagMatcher Regex(std::string name, std::string pattern) {
    return TagMatcher{Type::kRegex, std::move(name), std::move(pattern)};
  }
};

/// Thread safety: fully internally synchronized — every public method
/// (Add/Remove/Select/TagValues/MemoryUsage/AdviseDontNeed) takes the
/// internal mutex, so readers and writers from any thread are safe.
/// Writers are nevertheless expected to be serialized by the DB's
/// registration mutex: a series registration performs several Add calls
/// plus a tag-store append, and only external serialization makes that
/// sequence atomic to concurrent readers.
class InvertedIndex {
 public:
  /// Trie files go under `dir` with the `name` prefix.
  InvertedIndex(std::string dir, std::string name, TrieOptions trie_options = {});
  ~InvertedIndex();

  Status Init();

  /// Adds `id` to the postings of every tag pair in `labels`. Thread-safe.
  Status Add(uint64_t id, const Labels& labels);

  /// Removes `id` from the postings of every tag pair in `labels`
  /// (retention purge).
  Status Remove(uint64_t id, const Labels& labels);

  /// Resolves the matchers to the sorted ID set satisfying all of them.
  Status Select(const std::vector<TagMatcher>& matchers, Postings* out) const;

  /// Postings of one exact tag pair (empty if absent).
  Status GetPostings(const std::string& name, const std::string& value,
                     Postings* out) const;

  /// Lists all values stored under a tag name (label-values API), sorted.
  Status TagValues(const std::string& name,
                   std::vector<std::string>* values) const;

  /// Total number of distinct tag pairs.
  uint64_t NumTagPairs() const;

  /// Index memory: trie structure + postings lists.
  uint64_t MemoryUsage() const;

  Status Sync();
  void AdviseDontNeed();

 private:
  Status SelectOne(const TagMatcher& m, Postings* out) const;

  /// Returns the postings list id for the tag pair, creating it if absent.
  Status GetOrCreateList(const std::string& trie_key, uint64_t* list_id);

  mutable std::mutex mu_;
  DoubleArrayTrie trie_;
  std::vector<Postings> lists_;
  uint64_t postings_bytes_ = 0;  // tracked incrementally for MemoryUsage
};

}  // namespace tu::index
