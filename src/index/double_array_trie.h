// Double-array trie with a tail array (Aoe 1992 / cedar style), the
// paper's §3.2 inverted-index backbone. Three growable arrays — BASE,
// CHECK, TAIL — each stored in dynamic mmap file arrays so the index can
// exceed RAM and be swapped by the OS instead of OOM-killing the process.
//
// Semantics (Fig. 8):
//   state(x --c--> y):  y = BASE[x] + code(c), valid iff CHECK[y] == x
//   BASE[y] < 0:        leaf; -(BASE[y]+1) is a TAIL offset holding the
//                       remaining suffix (length-prefixed) and the value.
//
// Keys are arbitrary byte strings (tag pairs "key$value"); values are
// uint64 (postings-list ids). Supports exact lookup, insert-or-update, and
// prefix iteration (the substrate for regex tag selectors).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "util/mmap_file.h"
#include "util/slice.h"
#include "util/status.h"

namespace tu::index {

struct TrieOptions {
  /// Slots per mmap file for BASE/CHECK (paper: one million).
  size_t slots_per_file = 1 << 20;
  /// Bytes per mmap file for TAIL.
  size_t tail_file_bytes = 4 << 20;
};

class DoubleArrayTrie {
 public:
  /// Trie files are created under `dir` with the given `name` prefix.
  DoubleArrayTrie(std::string dir, std::string name, TrieOptions options = {});
  ~DoubleArrayTrie();

  DoubleArrayTrie(const DoubleArrayTrie&) = delete;
  DoubleArrayTrie& operator=(const DoubleArrayTrie&) = delete;

  /// Must be called once before use; maps the initial files.
  Status Init();

  /// Inserts `key` -> `value`, overwriting any existing value.
  Status Insert(const Slice& key, uint64_t value);

  /// Exact lookup. Returns NotFound if absent.
  Status Lookup(const Slice& key, uint64_t* value) const;

  /// Invokes `fn(key, value)` for every stored key starting with `prefix`,
  /// in unspecified order. `fn` returning false stops the iteration.
  Status ScanPrefix(const Slice& prefix,
                    const std::function<bool(const std::string&, uint64_t)>& fn) const;

  /// Number of stored keys.
  uint64_t num_keys() const { return num_keys_; }

  /// Bytes of trie structure in active use (BASE+CHECK used slots + TAIL
  /// used bytes). This is what the memory experiments account.
  uint64_t MemoryUsage() const;

  /// Flushes mmap files to disk.
  Status Sync();

  /// Hints the OS that the mapping can be reclaimed (swap-out behaviour).
  void AdviseDontNeed();

 private:
  static constexpr int32_t kRoot = 1;
  static constexpr int32_t kEndCode = 1;  // terminator pseudo-character

  static int32_t Code(uint8_t c) { return static_cast<int32_t>(c) + 2; }
  static constexpr int32_t kMaxCode = 257;

  int32_t& BaseAt(int32_t s);
  int32_t& CheckAt(int32_t s);
  int32_t BaseAt(int32_t s) const;
  int32_t CheckAt(int32_t s) const;

  /// Grows BASE/CHECK so index `s` is addressable.
  Status EnsureState(int32_t s);

  /// Appends `suffix` + value to TAIL; returns the tail offset.
  Status AppendTail(const Slice& suffix, uint64_t value, int64_t* offset);

  /// Reads the tail entry at `offset`.
  void ReadTail(int64_t offset, std::string* suffix, uint64_t* value) const;

  /// Overwrites the value of the tail entry at `offset` (suffix unchanged).
  void WriteTailValue(int64_t offset, uint64_t value);

  /// Finds a BASE b such that for every code in `codes` the slot b+code is
  /// free; grows the arrays as needed.
  Status FindBase(const int32_t* codes, int n, int32_t* out_base);

  /// Moves the children of `s` to a base that also frees slot for
  /// `extra_code`.
  Status Relocate(int32_t s, int32_t extra_code);

  /// Makes `s` (a leaf pointing into TAIL) into an internal chain/branch so
  /// that `remaining` (suffix of the key being inserted, may be empty) can
  /// be added with `value`.
  Status SplitLeaf(int32_t s, const Slice& remaining, uint64_t value);

  /// Creates a leaf child of `parent` via `code`, with tail `suffix`+value.
  Status MakeLeaf(int32_t parent, int32_t code, const Slice& suffix,
                  uint64_t value);

  /// Recursive DFS for ScanPrefix.
  bool ScanNode(int32_t s, std::string* key_buf,
                const std::function<bool(const std::string&, uint64_t)>& fn) const;

  TrieOptions options_;
  std::unique_ptr<MmapFileArray> base_;
  std::unique_ptr<MmapFileArray> check_;
  std::unique_ptr<MmapFileArray> tail_;

  int32_t max_state_ = 0;        // highest addressable state index
  int32_t used_states_ = 0;      // claimed slots (for memory accounting)
  int64_t tail_pos_ = 0;         // next free TAIL byte
  uint64_t num_keys_ = 0;
  int32_t next_check_pos_ = 2;   // FindBase scan heuristic
};

}  // namespace tu::index
