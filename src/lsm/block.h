// SSTable data/index block format with restart-point prefix compression
// (§3.3: the 16-byte chunk keys share long prefixes, so prefix compression
// saves the 64-bit ID and most timestamp bytes for consecutive chunks of
// the same series/group).
//
// Entry: varint32 shared_len | varint32 unshared_len | varint32 value_len
//        | unshared key bytes | value bytes
// Trailer: fixed32 restart offsets... | fixed32 num_restarts
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lsm/iterator.h"
#include "util/slice.h"
#include "util/status.h"

namespace tu::lsm {

class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval = 16);

  /// Keys must be added in ascending order.
  void Add(const Slice& key, const Slice& value);

  /// Appends the restart trailer and returns the block contents.
  Slice Finish();

  void Reset();

  /// Uncompressed size if Finish() were called now.
  size_t CurrentSizeEstimate() const;
  bool empty() const { return buffer_.empty(); }
  const std::string& last_key() const { return last_key_; }

 private:
  int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_ = 0;
  bool finished_ = false;
  std::string last_key_;
};

/// An immutable parsed block; shared across iterators (cacheable).
class Block {
 public:
  /// `contents` is copied.
  explicit Block(const Slice& contents);

  std::unique_ptr<Iterator> NewIterator() const;
  size_t size() const { return data_.size(); }

 private:
  class Iter;

  std::string data_;
  uint32_t restart_offset_ = 0;  // offset of the restart array
  uint32_t num_restarts_ = 0;
  bool malformed_ = false;
};

}  // namespace tu::lsm
