#include "lsm/memtable.h"

#include "lsm/key_format.h"
#include "util/coding.h"
#include "util/memory_tracker.h"

namespace tu::lsm {

std::string MakeInternalKey(const Slice& user_key, uint64_t seq) {
  std::string key(user_key.data(), user_key.size());
  PutBigEndian64(&key, ~seq);
  return key;
}

uint64_t InternalKeySeq(const Slice& internal_key) {
  return ~DecodeBigEndian64(internal_key.data() + internal_key.size() - 8);
}

MemTable::MemTable() : table_(&arena_) {}

void MemTable::Add(uint64_t seq, const Slice& user_key, const Slice& value) {
  // Entry layout: [internal key (user_key.size + 8)][value]; the skiplist
  // key slice covers the whole entry — internal keys are unique and have a
  // fixed size, so bytewise comparison of full entries orders correctly.
  const size_t ikey_size = user_key.size() + 8;
  const size_t entry_size = ikey_size + value.size();
  char* buf = arena_.Allocate(entry_size);
  memcpy(buf, user_key.data(), user_key.size());
  EncodeBigEndian64(buf + user_key.size(), ~seq);
  memcpy(buf + ikey_size, value.data(), value.size());
  table_.Insert(Slice(buf, entry_size));
  ++num_entries_;

  const int64_t ts = ChunkKeyTimestamp(user_key);
  if (ts < min_ts_) min_ts_ = ts;
  if (ts > max_ts_) max_ts_ = ts;
}

namespace {

class MemTableIterator : public Iterator {
 public:
  explicit MemTableIterator(const SkipList* table) : iter_(table) {}

  bool Valid() const override { return iter_.Valid(); }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void Seek(const Slice& target) override {
    // target is an internal key (or a prefix thereof).
    iter_.Seek(target);
  }
  void Next() override { iter_.Next(); }

  Slice key() const override {
    const Slice entry = iter_.key();
    return Slice(entry.data(), kInternalKeySize);
  }
  Slice value() const override {
    const Slice entry = iter_.key();
    return Slice(entry.data() + kInternalKeySize,
                 entry.size() - kInternalKeySize);
  }
  Status status() const override { return Status::OK(); }

 private:
  SkipList::Iterator iter_;
};

}  // namespace

std::unique_ptr<Iterator> MemTable::NewIterator() const {
  return std::make_unique<MemTableIterator>(&table_);
}

}  // namespace tu::lsm
