// LeveledLsm ("leveldb-lite"): a from-scratch classic leveled LSM-tree —
// memtable, L0 with overlapping tables, size-tiered deeper levels with
// LevelDB's level-based compaction (victim table + all overlapping tables
// in the next level). This is the baseline architecture of §2.3/Fig. 4 and
// the storage engine of the TU-LDB / tsdb-LDB comparison systems: levels
// below `num_fast_levels` live on the slow object tier, which is exactly
// what makes its compactions pay the S3 traffic the paper measures.
//
// Values are opaque (no chunk merging): the store is a duplicate-tolerant
// multiset over internal keys, queries do sample-level newest-wins.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cloud/tiered_env.h"
#include "lsm/chunk_store.h"
#include "lsm/iterator.h"
#include "lsm/memtable.h"
#include "lsm/table_builder.h"
#include "lsm/table_reader.h"
#include "obs/metrics.h"

namespace tu::lsm {

/// A placed SSTable: metadata + lazily opened reader.
struct TableHandle {
  TableMeta meta;
  bool on_slow = false;
  std::shared_ptr<TableReader> reader;
  /// Set when the read path found this table corrupt with no healthy copy
  /// to fall back to. Queries skip it (recording the missing span when
  /// partial reads are allowed) instead of re-probing rotten bytes; the
  /// scrub job makes the quarantine durable (manifest removal) or clears
  /// it after a repair.
  bool quarantined = false;
};

struct LeveledLsmOptions {
  size_t memtable_bytes = 4 << 20;
  /// Target size of level 1; level i target = base * multiplier^(i-1).
  uint64_t base_level_bytes = 8 << 20;
  double level_multiplier = 10.0;
  int l0_compaction_trigger = 4;
  int max_levels = 7;
  /// Levels [0, num_fast_levels) on the fast tier, the rest on slow.
  int num_fast_levels = 2;
  size_t max_output_table_bytes = 2 << 20;
  /// Observability registry (owned by the DB, outlives the LSM). When set,
  /// the tree records flush/compaction/table-build latency histograms and
  /// background-job events.
  obs::MetricsRegistry* metrics = nullptr;
  TableBuilderOptions table_options;
};

/// Compaction statistics for the Fig. 4 analysis.
struct CompactionStats {
  std::atomic<uint64_t> compactions{0};
  std::atomic<uint64_t> tables_read{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> slow_bytes_written{0};
  std::atomic<uint64_t> total_us{0};
  // Integrity: corrupt blocks seen / healed by the self-healing read path,
  // and tables quarantined at read time (this backend keeps one copy per
  // table, so there is no second tier to fall back to).
  std::atomic<uint64_t> read_corruptions_detected{0};
  std::atomic<uint64_t> read_corruptions_healed{0};
  std::atomic<uint64_t> runtime_quarantines{0};
};

class LeveledLsm : public ChunkStore {
 public:
  /// Files live under `<env fast root>/<name>/`; slow-tier objects use the
  /// key prefix `<name>/`.
  LeveledLsm(cloud::TieredEnv* env, std::string name, LeveledLsmOptions options,
             BlockCache* block_cache);
  ~LeveledLsm() override;

  Status Open() override;

  /// Inserts an entry; flush + compactions run inline when thresholds trip.
  Status Put(const Slice& user_key, const Slice& value) override;

  /// Forces the memtable to disk and runs all pending compactions.
  Status FlushAll() override;

  /// Iterator over the full store for series `id` in [ctx.t0, ctx.t1]:
  /// children are the memtable plus every table possibly containing the
  /// id/range, newest-first at equal keys. With ctx.scope.allow_partial,
  /// unreachable slow-level tables are skipped; without time partitioning
  /// the missing span is conservative ([min_ts, t1]). Pruning decisions
  /// are counted into ctx.stats.
  using ChunkStore::NewIteratorForId;
  Status NewIteratorForId(uint64_t id, const ReadContext& ctx,
                          std::unique_ptr<Iterator>* out) override;

  /// No time partitioning: chunks close on sample count only.
  int64_t PartitionEndFor(int64_t ts) const override {
    (void)ts;
    return INT64_MAX;
  }

  /// Iterator over everything (integration tests / full scans).
  Status NewFullIterator(std::unique_ptr<Iterator>* out);

  const CompactionStats& stats() const { return stats_; }
  uint64_t NumTables(int level) const;
  uint64_t TotalBytes(int level) const;
  int num_levels() const { return options_.max_levels; }

 private:
  Status FlushMemTable();
  Status MaybeCompact();
  Status CompactLevel(int level);
  /// Opens the table reader; compaction reads pass fill_cache=false so
  /// they do not pollute the query block cache (RocksDB idiom).
  Status OpenReader(TableHandle* handle, bool fill_cache = true);
  Status BuildTables(Iterator* input, int target_level,
                     std::vector<TableHandle>* outputs);
  std::string FastName(uint64_t table_id) const;
  std::string SlowKey(uint64_t table_id) const;
  bool LevelIsFast(int level) const {
    return level < options_.num_fast_levels;
  }
  Status DeleteTable(const TableHandle& handle, bool was_fast);

  cloud::TieredEnv* env_;
  std::string name_;
  LeveledLsmOptions options_;
  BlockCache* block_cache_;

  std::mutex mu_;
  std::unique_ptr<MemTable> mem_;
  std::vector<std::vector<TableHandle>> levels_;  // L0 newest-first
  uint64_t next_table_id_ = 1;
  uint64_t next_seq_ = 1;
  int compaction_pointer_ = 0;  // round-robin victim index heuristic

  /// Cached observability instruments (null when options_.metrics is null).
  obs::Histogram* h_memflush_us_ = nullptr;
  obs::Histogram* h_compact_us_ = nullptr;
  obs::Histogram* h_table_build_us_ = nullptr;
  obs::EventTrace* trace_ = nullptr;

  CompactionStats stats_;
};

}  // namespace tu::lsm
