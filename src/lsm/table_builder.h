// TableBuilder: writes an SSTable — 4 KB prefix-compressed data blocks
// (optionally SnappyLite-compressed), a bloom filter block, an index block
// and the footer. The sink abstraction lets tables be streamed to the fast
// tier (file append) or buffered and uploaded whole to the slow tier
// (object Put), matching the paper's "new SSTables are uploaded to slow
// cloud storage" flow.
#pragma once

#include <memory>
#include <string>

#include "cloud/block_store.h"
#include "util/crc32c.h"
#include "lsm/block.h"
#include "lsm/bloom.h"
#include "lsm/table_format.h"
#include "util/status.h"

namespace tu::lsm {

/// Byte sink a table is built into. The base class accumulates a running
/// CRC32C over every appended byte, so the builder can record a whole-file
/// checksum in TableMeta without re-reading what it just wrote.
class TableSink {
 public:
  virtual ~TableSink() = default;
  Status Append(const Slice& data) {
    Status s = AppendImpl(data);
    if (s.ok()) crc_ = crc32c::Extend(crc_, data.data(), data.size());
    return s;
  }
  virtual uint64_t Size() const = 0;
  virtual Status Close() = 0;
  /// CRC32C (unmasked) of all bytes appended so far.
  uint32_t crc() const { return crc_; }

 protected:
  virtual Status AppendImpl(const Slice& data) = 0;

 private:
  uint32_t crc_ = 0;
};

/// Sink writing to a fast-tier file.
class FileTableSink : public TableSink {
 public:
  explicit FileTableSink(std::unique_ptr<cloud::WritableFile> file)
      : file_(std::move(file)) {}

  uint64_t Size() const override { return file_->Size(); }
  Status Close() override {
    TU_RETURN_IF_ERROR(file_->Sync());
    return file_->Close();
  }

 protected:
  Status AppendImpl(const Slice& data) override {
    return file_->Append(data);
  }

 private:
  std::unique_ptr<cloud::WritableFile> file_;
};

/// Sink buffering in memory (for slow-tier object upload).
class BufferTableSink : public TableSink {
 public:
  uint64_t Size() const override { return buffer_.size(); }
  Status Close() override { return Status::OK(); }

  const std::string& buffer() const { return buffer_; }

 protected:
  Status AppendImpl(const Slice& data) override {
    buffer_.append(data.data(), data.size());
    return Status::OK();
  }

 private:
  std::string buffer_;
};

struct TableBuilderOptions {
  size_t block_size = 4096;  // S_block of the cost model
  int restart_interval = 16;
  bool compress_blocks = true;
  int bloom_bits_per_key = 10;
};

class TableBuilder {
 public:
  TableBuilder(TableBuilderOptions options, TableSink* sink);

  /// Adds a key-value pair; internal keys must arrive in ascending order.
  Status Add(const Slice& key, const Slice& value);

  /// Writes filter/index/footer. The sink is flushed but not closed.
  Status Finish(TableMeta* meta);

  uint64_t num_entries() const { return meta_.num_entries; }
  uint64_t EstimatedSize() const;

 private:
  Status FlushDataBlock();
  Status WriteBlock(const Slice& contents, BlockHandle* handle);

  TableBuilderOptions options_;
  TableSink* sink_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  BloomFilterBuilder filter_;
  TableMeta meta_;
  std::string last_data_block_key_;
  uint64_t last_filter_id_ = 0;
  bool pending_index_entry_ = false;
  BlockHandle pending_handle_;
  std::string compress_scratch_;
};

}  // namespace tu::lsm
