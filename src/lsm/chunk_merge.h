// Sample-aware chunk operations used by compactions (§3.3):
//  - merging the chunks of one series/group into larger chunks ("key-value
//    pairs of the same timeseries/group are merged into larger key-value
//    pairs for a better compression ratio"), newest-SSTable-wins on
//    duplicate timestamps;
//  - splitting a chunk at time-partition boundaries so partition contents
//    stay strictly bounded by their time range (partition align, Fig. 12).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compress/rollup.h"
#include "lsm/key_format.h"
#include "util/slice.h"
#include "util/status.h"

namespace tu::lsm {

/// One chunk entry with its precedence (the internal-key sequence; larger =
/// newer).
struct ChunkInput {
  uint64_t seq = 0;
  Slice value;  // type byte + payload
};

/// Merges chunks of ONE series/group (all inputs must share the chunk
/// type). Produces merged output chunks covering [split boundaries), each
/// at most `max_samples_per_chunk` samples: {start_ts, serialized value}.
/// `boundaries` is a sorted list of time-partition boundaries; output
/// chunks never span a boundary. Duplicate timestamps resolve newest-first
/// per sample (series) / per cell (group member).
///
/// Input chunks can carry rows far outside [boundaries.front(),
/// boundaries.back()): an open head chunk buffers rewrites at arbitrary
/// timestamps, so the chunk-START bucketing the caller used to pick
/// `boundaries` is only a lower bound on row time. Rather than clamping
/// such rows into the edge interval — which would strand them in a time
/// partition that compactions of their true time range never revisit,
/// silently breaking last-write-wins — the merge EXTENDS `boundaries` by
/// whole edge-sized steps until every merged row is covered. Callers must
/// route the extra intervals to real partitions.
///
/// `max_seq` is the largest input seq that contributed a winning sample
/// (series) or cell (group) to THIS chunk. Compaction must stamp the
/// output entry with it — not a fresh global seq — so a newer rewrite
/// chunk excluded from the merge still outranks the merged output
/// (last-write-wins, ROADMAP "compaction seq restamping").
struct MergedChunk {
  int64_t start_ts = 0;
  uint64_t max_seq = 0;
  std::string value;  // type byte + payload
};

/// Optional rollup side-output of MergeChunks (individual series only —
/// groups never produce rollups). Callers set `granularities_ms`; the
/// merge fills `buckets` (one ascending vector per granularity, built by
/// the same query::AccumulateIntoBuckets fold the read path uses, so
/// rollup-served sums are bitwise identical to raw-path sums) and
/// `max_seq` (the max winning seq across the whole merged series — the
/// PR-8 restamping discipline applied to the rollup chunk as a whole).
/// Buckets cover every merged sample, including rows outside the original
/// boundary range; the caller trims to the window it is materializing.
struct RollupOutput {
  std::vector<int64_t> granularities_ms;
  std::vector<std::vector<compress::RollupBucket>> buckets;
  uint64_t max_seq = 0;
};

Status MergeChunks(const std::vector<ChunkInput>& inputs,
                   std::vector<int64_t>* boundaries,
                   uint32_t max_samples_per_chunk,
                   std::vector<MergedChunk>* out,
                   RollupOutput* rollup = nullptr);

/// Returns the partition index of `ts` given sorted `boundaries`:
/// partition i covers [boundaries[i], boundaries[i+1]). ts before the first
/// boundary -> -1; after the last -> boundaries.size()-1.
int PartitionIndexOf(const std::vector<int64_t>& boundaries, int64_t ts);

}  // namespace tu::lsm
