// ChunkStore: the storage-engine contract TimeUnionDB writes its closed
// chunks into. Implemented by TimePartitionedLsm (the paper's design) and
// LeveledLsm (the classic design) — swapping them is exactly the paper's
// TU vs TU-LDB comparison (§4.1 comparison systems).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "lsm/iterator.h"
#include "util/slice.h"
#include "util/status.h"

namespace tu::lsm {

/// How a read should behave when part of the store is unreachable (slow
/// tier down, circuit breaker open). With `allow_partial`, stores skip
/// slow-tier tables they cannot open and record the closed timestamp span
/// each skipped table may have covered in `*missing` (unclamped entries
/// are fine — callers merge and clamp); without it, the first unreachable
/// table fails the read.
struct ReadScope {
  bool allow_partial = false;
  std::vector<std::pair<int64_t, int64_t>>* missing = nullptr;
};

class ChunkStore {
 public:
  virtual ~ChunkStore() = default;

  virtual Status Open() = 0;
  /// Inserts a chunk entry (§3.3 key format; type byte + payload value).
  virtual Status Put(const Slice& user_key, const Slice& value) = 0;
  /// Flushes memtables and drains pending maintenance.
  virtual Status FlushAll() = 0;
  /// Iterator over all chunks of `id` intersecting [t0, t1].
  virtual Status NewIteratorForId(uint64_t id, int64_t t0, int64_t t1,
                                  const ReadScope& scope,
                                  std::unique_ptr<Iterator>* out) = 0;
  /// Strict-read convenience: any unreachable table fails the call.
  Status NewIteratorForId(uint64_t id, int64_t t0, int64_t t1,
                          std::unique_ptr<Iterator>* out) {
    return NewIteratorForId(id, t0, t1, ReadScope{}, out);
  }
  /// Drops data entirely older than `watermark` (best effort).
  virtual Status ApplyRetention(int64_t watermark) {
    (void)watermark;
    return Status::OK();
  }
  /// End of the time partition a chunk starting at `ts` must not cross
  /// (stores without time partitioning return a far horizon).
  virtual int64_t PartitionEndFor(int64_t ts) const = 0;
};

}  // namespace tu::lsm
