// ChunkStore: the storage-engine contract TimeUnionDB writes its closed
// chunks into. Implemented by TimePartitionedLsm (the paper's design) and
// LeveledLsm (the classic design) — swapping them is exactly the paper's
// TU vs TU-LDB comparison (§4.1 comparison systems).
#pragma once

#include <cstdint>
#include <memory>

#include "lsm/iterator.h"
#include "util/slice.h"
#include "util/status.h"

namespace tu::lsm {

class ChunkStore {
 public:
  virtual ~ChunkStore() = default;

  virtual Status Open() = 0;
  /// Inserts a chunk entry (§3.3 key format; type byte + payload value).
  virtual Status Put(const Slice& user_key, const Slice& value) = 0;
  /// Flushes memtables and drains pending maintenance.
  virtual Status FlushAll() = 0;
  /// Iterator over all chunks of `id` intersecting [t0, t1].
  virtual Status NewIteratorForId(uint64_t id, int64_t t0, int64_t t1,
                                  std::unique_ptr<Iterator>* out) = 0;
  /// Drops data entirely older than `watermark` (best effort).
  virtual Status ApplyRetention(int64_t watermark) {
    (void)watermark;
    return Status::OK();
  }
  /// End of the time partition a chunk starting at `ts` must not cross
  /// (stores without time partitioning return a far horizon).
  virtual int64_t PartitionEndFor(int64_t ts) const = 0;
};

}  // namespace tu::lsm
