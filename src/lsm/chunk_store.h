// ChunkStore: the storage-engine contract TimeUnionDB writes its closed
// chunks into. Implemented by TimePartitionedLsm (the paper's design) and
// LeveledLsm (the classic design) — swapping them is exactly the paper's
// TU vs TU-LDB comparison (§4.1 comparison systems).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "lsm/iterator.h"
#include "query/read_context.h"
#include "util/slice.h"
#include "util/status.h"

namespace tu::lsm {

// The per-query read parameters (time range, degraded-read scope, cache
// policy, stats accumulator) live in the query layer and thread through
// every ChunkStore unchanged; re-exported here under their historical
// lsm:: spellings.
using query::ReadContext;
using query::ReadScope;

class ChunkStore {
 public:
  virtual ~ChunkStore() = default;

  virtual Status Open() = 0;
  /// Inserts a chunk entry (§3.3 key format; type byte + payload value).
  virtual Status Put(const Slice& user_key, const Slice& value) = 0;
  /// Flushes memtables and drains pending maintenance.
  virtual Status FlushAll() = 0;
  /// Iterator over all chunks of `id` intersecting [ctx.t0, ctx.t1].
  /// Honors ctx.scope for degraded reads, ctx.fill_cache for block-cache
  /// population, and accumulates pruning/IO counters into ctx.stats.
  virtual Status NewIteratorForId(uint64_t id, const ReadContext& ctx,
                                  std::unique_ptr<Iterator>* out) = 0;
  /// Strict-read convenience: any unreachable table fails the call.
  Status NewIteratorForId(uint64_t id, int64_t t0, int64_t t1,
                          std::unique_ptr<Iterator>* out) {
    ReadContext ctx;
    ctx.t0 = t0;
    ctx.t1 = t1;
    return NewIteratorForId(id, ctx, out);
  }
  /// Drops data entirely older than `watermark` (best effort).
  virtual Status ApplyRetention(int64_t watermark) {
    (void)watermark;
    return Status::OK();
  }
  /// End of the time partition a chunk starting at `ts` must not cross
  /// (stores without time partitioning return a far horizon).
  virtual int64_t PartitionEndFor(int64_t ts) const = 0;
};

}  // namespace tu::lsm
