#include "lsm/chunk_merge.h"

#include <algorithm>
#include <map>
#include <optional>

#include "compress/chunk.h"
#include "query/aggregate.h"

namespace tu::lsm {

int PartitionIndexOf(const std::vector<int64_t>& boundaries, int64_t ts) {
  auto it = std::upper_bound(boundaries.begin(), boundaries.end(), ts);
  return static_cast<int>(it - boundaries.begin()) - 1;
}

namespace {

// Grows `b` by whole edge-sized steps until [min_ts, max_ts] lies inside
// [b->front(), b->back()). Callers pass uniform-step boundary lists, so the
// extension keeps partition alignment.
void ExtendBoundariesToCover(std::vector<int64_t>* b, int64_t min_ts,
                             int64_t max_ts) {
  const int64_t front_step = (*b)[1] - (*b)[0];
  const int64_t back_step = b->back() - (*b)[b->size() - 2];
  while (min_ts < b->front()) b->insert(b->begin(), b->front() - front_step);
  while (max_ts >= b->back()) b->push_back(b->back() + back_step);
}

Status MergeSeriesChunks(const std::vector<ChunkInput>& inputs,
                         std::vector<int64_t>* boundaries,
                         uint32_t max_samples_per_chunk,
                         std::vector<MergedChunk>* out,
                         RollupOutput* rollup) {
  // Newest-first so the first writer of a timestamp wins.
  std::vector<const ChunkInput*> ordered;
  ordered.reserve(inputs.size());
  for (const ChunkInput& in : inputs) ordered.push_back(&in);
  std::sort(ordered.begin(), ordered.end(),
            [](const ChunkInput* a, const ChunkInput* b) {
              return a->seq > b->seq;
            });

  // Value plus the seq of the input chunk that claimed the timestamp, so
  // each output chunk can carry the max seq of its own winners.
  std::map<int64_t, std::pair<double, uint64_t>> merged;
  for (const ChunkInput* in : ordered) {
    uint64_t seq = 0;
    std::vector<compress::Sample> samples;
    TU_RETURN_IF_ERROR(compress::DecodeSeriesChunk(
        ChunkValuePayload(in->value), &seq, &samples));
    for (const compress::Sample& s : samples) {
      merged.emplace(s.timestamp,
                     std::make_pair(s.value, in->seq));  // newest (first) wins
    }
  }
  if (merged.empty()) return Status::OK();
  ExtendBoundariesToCover(boundaries, merged.begin()->first,
                          merged.rbegin()->first);

  // Emit per partition, capping samples per output chunk.
  std::vector<compress::Sample> pending;
  uint64_t pending_seq = 0;
  int pending_partition = INT32_MIN;
  auto flush_pending = [&]() {
    if (pending.empty()) return;
    std::string payload;
    compress::EncodeSeriesChunk(pending_seq, pending, &payload);
    out->push_back(MergedChunk{pending[0].timestamp, pending_seq,
                               MakeChunkValue(ChunkType::kSeries, payload)});
    pending.clear();
    pending_seq = 0;
  };
  for (const auto& [ts, vs] : merged) {
    const int part = PartitionIndexOf(*boundaries, ts);
    if (part != pending_partition ||
        pending.size() >= max_samples_per_chunk) {
      flush_pending();
      pending_partition = part;
    }
    pending.push_back(compress::Sample{ts, vs.first});
    pending_seq = std::max(pending_seq, vs.second);
    if (rollup != nullptr) {
      // Same ascending fold as the query-side raw path — bitwise-identical
      // sums are what let the planner mix rollup and raw answers freely.
      for (size_t g = 0; g < rollup->granularities_ms.size(); ++g) {
        query::AccumulateIntoBuckets(&ts, &vs.first, 1,
                                     rollup->granularities_ms[g],
                                     &rollup->buckets[g]);
      }
      rollup->max_seq = std::max(rollup->max_seq, vs.second);
    }
  }
  flush_pending();
  return Status::OK();
}

Status MergeGroupChunks(const std::vector<ChunkInput>& inputs,
                        std::vector<int64_t>* boundaries,
                        uint32_t max_samples_per_chunk,
                        std::vector<MergedChunk>* out) {
  std::vector<const ChunkInput*> ordered;
  ordered.reserve(inputs.size());
  for (const ChunkInput& in : inputs) ordered.push_back(&in);
  std::sort(ordered.begin(), ordered.end(),
            [](const ChunkInput* a, const ChunkInput* b) {
              return a->seq > b->seq;
            });

  // Row-merge: newest chunk's non-NULL cell wins; member counts may differ
  // across chunks (new members appear in later chunks) — the merged width
  // is the maximum (§3.3 "handle the inconsistency in two group chunks by
  // filling NULL values to those missing timeseries").
  std::map<int64_t, std::vector<std::optional<double>>> merged;
  // Largest input seq that claimed any cell of the row, per timestamp —
  // the precedence the whole merged row (and its output chunk) must keep.
  std::map<int64_t, uint64_t> row_seq;
  uint32_t width = 0;
  for (const ChunkInput* in : ordered) {
    uint64_t seq = 0;
    uint32_t members = 0;
    std::vector<compress::GroupRow> rows;
    TU_RETURN_IF_ERROR(compress::DecodeGroupChunk(
        ChunkValuePayload(in->value), &seq, &members, &rows));
    width = std::max(width, members);
    for (compress::GroupRow& row : rows) {
      auto& cells = merged.try_emplace(row.timestamp).first->second;
      if (cells.size() < row.values.size()) cells.resize(row.values.size());
      for (size_t m = 0; m < row.values.size(); ++m) {
        // Only fill cells not already claimed by a newer chunk.
        if (!cells[m].has_value() && row.values[m].has_value()) {
          cells[m] = row.values[m];
          uint64_t& rs = row_seq[row.timestamp];
          rs = std::max(rs, in->seq);
        }
      }
    }
  }
  if (merged.empty()) return Status::OK();
  ExtendBoundariesToCover(boundaries, merged.begin()->first,
                          merged.rbegin()->first);

  std::vector<compress::GroupRow> pending;
  uint64_t pending_seq = 0;
  int pending_partition = INT32_MIN;
  auto flush_pending = [&]() {
    if (pending.empty()) return;
    for (compress::GroupRow& row : pending) row.values.resize(width);
    std::string payload;
    compress::EncodeGroupChunk(pending_seq, width, pending, &payload);
    out->push_back(MergedChunk{pending[0].timestamp, pending_seq,
                               MakeChunkValue(ChunkType::kGroup, payload)});
    pending.clear();
    pending_seq = 0;
  };
  for (auto& [ts, cells] : merged) {
    const int part = PartitionIndexOf(*boundaries, ts);
    if (part != pending_partition ||
        pending.size() >= max_samples_per_chunk) {
      flush_pending();
      pending_partition = part;
    }
    compress::GroupRow row;
    row.timestamp = ts;
    row.values = cells;
    pending.push_back(std::move(row));
    const auto it = row_seq.find(ts);
    if (it != row_seq.end()) pending_seq = std::max(pending_seq, it->second);
  }
  flush_pending();
  return Status::OK();
}

}  // namespace

Status MergeChunks(const std::vector<ChunkInput>& inputs,
                   std::vector<int64_t>* boundaries,
                   uint32_t max_samples_per_chunk,
                   std::vector<MergedChunk>* out, RollupOutput* rollup) {
  out->clear();
  if (rollup != nullptr) {
    rollup->buckets.assign(rollup->granularities_ms.size(), {});
    rollup->max_seq = 0;
  }
  if (inputs.empty()) return Status::OK();
  const ChunkType type = ChunkValueType(inputs[0].value);
  for (const ChunkInput& in : inputs) {
    if (ChunkValueType(in.value) != type) {
      return Status::Corruption("mixed chunk types under one key");
    }
  }
  if (type == ChunkType::kSeries) {
    return MergeSeriesChunks(inputs, boundaries, max_samples_per_chunk, out,
                             rollup);
  }
  return MergeGroupChunks(inputs, boundaries, max_samples_per_chunk, out);
}

}  // namespace tu::lsm
