// On-disk SSTable format shared by the builder and reader:
//
//   [data block]* [filter block] [index block] [footer]
//
// Each block is stored as: contents | 1-byte compression type | 4-byte
// masked CRC32C(contents + type). Index entries map the last key of each
// data block to its BlockHandle. The footer (fixed size, at file end)
// holds the filter and index handles plus a magic number.
#pragma once

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/slice.h"
#include "util/status.h"

namespace tu::lsm {

constexpr uint64_t kTableMagic = 0x7475736d67726b76ull;  // "tusmgrkv"
constexpr size_t kBlockTrailerSize = 5;                  // type + crc32
constexpr size_t kFooterSize = 48;

enum class BlockCompression : char {
  kNone = 0,
  kSnappyLite = 1,
};

struct BlockHandle {
  uint64_t offset = 0;
  uint64_t size = 0;  // contents size, excluding trailer

  void EncodeTo(std::string* dst) const {
    PutVarint64(dst, offset);
    PutVarint64(dst, size);
  }

  bool DecodeFrom(Slice* input) {
    return GetVarint64(input, &offset) && GetVarint64(input, &size);
  }
};

struct Footer {
  BlockHandle filter_handle;
  BlockHandle index_handle;

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(const Slice& input);
};

/// Summary of one SSTable kept in the level manifest: key/ID/time bounds
/// drive partition routing, patch ID-range routing (§3.3) and query
/// pruning.
struct TableMeta {
  uint64_t table_id = 0;     // unique file/object number
  uint64_t file_size = 0;
  uint64_t num_entries = 0;
  std::string smallest_key;  // internal keys
  std::string largest_key;
  uint64_t min_series_id = UINT64_MAX;
  uint64_t max_series_id = 0;
  int64_t min_ts = INT64_MAX;
  int64_t max_ts = INT64_MIN;
  /// Whole-file CRC32C (unmasked) computed over every byte the builder
  /// emitted, recorded in the manifest so downloads, fast-tier opens and
  /// the scrub job can verify end-to-end integrity. 0 = unknown (the
  /// verifiers skip the check rather than flag a false corruption).
  uint32_t object_crc32c = 0;
  /// Rollup descriptor: 0 for raw tables; the bucket granularity (ms) for
  /// tables that hold pre-aggregated RollupChunk values. Rollup tables
  /// ride through the same manifest/CRC/scrub machinery as raw tables —
  /// the descriptor is what tells the planner (and the maintenance tick)
  /// how to interpret them.
  int64_t rollup_granularity_ms = 0;

  void EncodeTo(std::string* dst) const;
  bool DecodeFrom(Slice* input);
};

/// Manifest envelope shared by the engines:
///
///   magic (fixed32) | payload_len (fixed32) | payload | masked CRC32C
///
/// The explicit length and trailing checksum let recovery distinguish a
/// torn write (file shorter than the envelope promises — the old contents
/// were lost mid-rename) from silent corruption (right length, wrong CRC).
constexpr uint32_t kManifestMagic = 0x744d4e46u;  // "FNMt"
constexpr size_t kManifestEnvelopeBytes = 12;     // magic + len + crc

/// Wraps `payload` in the envelope.
std::string WrapManifest(const std::string& payload);

/// Validates `contents` and points *payload at the wrapped bytes (into
/// `contents`, which must outlive it). Returns Corruption("torn ...") for
/// truncation, Corruption("... checksum mismatch") for a CRC failure.
Status UnwrapManifest(const std::string& contents, Slice* payload);

/// File/object naming shared by the engines.
std::string TableFileName(uint64_t table_id);

/// Inverse of TableFileName: true if `name` is a table file, extracting its
/// id. Used by the open-time orphan sweep to tell tables from other files.
bool ParseTableFileName(const std::string& name, uint64_t* table_id);

}  // namespace tu::lsm
