// Bloom filter for SSTable keys (§2.3: "a filter block with a bloom filter
// to accelerate queries"). Double-hashing scheme, ~10 bits/key default.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace tu::lsm {

class BloomFilterBuilder {
 public:
  explicit BloomFilterBuilder(int bits_per_key = 10);

  void AddKey(const Slice& key);

  /// Serializes the filter over all added keys (appends k as last byte).
  std::string Finish();

 private:
  int bits_per_key_;
  int k_;
  std::vector<uint32_t> hashes_;
};

/// Returns true if `key` may be in the filter (false = definitely absent).
bool BloomFilterMayContain(const Slice& filter, const Slice& key);

/// The hash function shared by builder and query side.
uint32_t BloomHash(const Slice& key);

}  // namespace tu::lsm
