// Key format of the time-partitioned LSM-tree (§3.3, Fig. 10 top):
//   [ 64-bit series/group ID | 64-bit chunk starting timestamp ]
// both big-endian, so bytewise SSTable order groups chunks of the same
// series/group together and sorts them by starting timestamp — the data
// locality that accelerates scans, and the prefix compression win.
//
// Values carry a one-byte chunk type so compactions can merge
// series/group chunks without consulting the head registry.
#pragma once

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/slice.h"

namespace tu::lsm {

constexpr size_t kChunkKeySize = 16;

/// Chunk value type tag (first byte of every LSM value).
enum class ChunkType : char {
  kSeries = 1,
  kGroup = 2,
  kRollup = 3,
};

inline std::string MakeChunkKey(uint64_t id, int64_t start_ts) {
  std::string key;
  key.reserve(kChunkKeySize);
  PutBigEndian64(&key, id);
  PutOrderedInt64(&key, start_ts);
  return key;
}

inline bool ParseChunkKey(const Slice& key, uint64_t* id, int64_t* start_ts) {
  if (key.size() != kChunkKeySize) return false;
  *id = DecodeBigEndian64(key.data());
  *start_ts = DecodeOrderedInt64(key.data() + 8);
  return true;
}

inline uint64_t ChunkKeyId(const Slice& key) {
  return DecodeBigEndian64(key.data());
}

inline int64_t ChunkKeyTimestamp(const Slice& key) {
  return DecodeOrderedInt64(key.data() + 8);
}

/// Prepends the chunk type tag to a serialized chunk payload.
inline std::string MakeChunkValue(ChunkType type, const std::string& payload) {
  std::string value;
  value.reserve(payload.size() + 1);
  value.push_back(static_cast<char>(type));
  value.append(payload);
  return value;
}

inline ChunkType ChunkValueType(const Slice& value) {
  return static_cast<ChunkType>(value[0]);
}

inline Slice ChunkValuePayload(const Slice& value) {
  return Slice(value.data() + 1, value.size() - 1);
}

}  // namespace tu::lsm
