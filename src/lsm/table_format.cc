#include "lsm/table_format.h"

#include <cstdio>

#include "util/crc32c.h"

namespace tu::lsm {

void Footer::EncodeTo(std::string* dst) const {
  const size_t start = dst->size();
  filter_handle.EncodeTo(dst);
  index_handle.EncodeTo(dst);
  dst->resize(start + kFooterSize - 8);  // pad
  PutFixed64(dst, kTableMagic);
}

Status Footer::DecodeFrom(const Slice& input) {
  if (input.size() < kFooterSize) {
    return Status::Corruption("footer too short");
  }
  const uint64_t magic = DecodeFixed64(input.data() + kFooterSize - 8);
  if (magic != kTableMagic) {
    return Status::Corruption("bad table magic");
  }
  Slice in(input.data(), kFooterSize - 8);
  if (!filter_handle.DecodeFrom(&in) || !index_handle.DecodeFrom(&in)) {
    return Status::Corruption("bad footer handles");
  }
  return Status::OK();
}

void TableMeta::EncodeTo(std::string* dst) const {
  PutVarint64(dst, table_id);
  PutVarint64(dst, file_size);
  PutVarint64(dst, num_entries);
  PutLengthPrefixedSlice(dst, smallest_key);
  PutLengthPrefixedSlice(dst, largest_key);
  PutVarint64(dst, min_series_id);
  PutVarint64(dst, max_series_id);
  PutFixed64(dst, static_cast<uint64_t>(min_ts));
  PutFixed64(dst, static_cast<uint64_t>(max_ts));
  PutFixed32(dst, object_crc32c);
  PutVarint64(dst, static_cast<uint64_t>(rollup_granularity_ms));
}

bool TableMeta::DecodeFrom(Slice* input) {
  Slice smallest, largest;
  if (!GetVarint64(input, &table_id) || !GetVarint64(input, &file_size) ||
      !GetVarint64(input, &num_entries) ||
      !GetLengthPrefixedSlice(input, &smallest) ||
      !GetLengthPrefixedSlice(input, &largest) ||
      !GetVarint64(input, &min_series_id) ||
      !GetVarint64(input, &max_series_id) || input->size() < 20) {
    return false;
  }
  smallest_key = smallest.ToString();
  largest_key = largest.ToString();
  min_ts = static_cast<int64_t>(DecodeFixed64(input->data()));
  max_ts = static_cast<int64_t>(DecodeFixed64(input->data() + 8));
  object_crc32c = DecodeFixed32(input->data() + 16);
  input->remove_prefix(20);
  uint64_t gran = 0;
  if (!GetVarint64(input, &gran)) return false;
  rollup_granularity_ms = static_cast<int64_t>(gran);
  return true;
}

std::string WrapManifest(const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + kManifestEnvelopeBytes);
  PutFixed32(&out, kManifestMagic);
  PutFixed32(&out, static_cast<uint32_t>(payload.size()));
  out.append(payload);
  PutFixed32(&out, crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  return out;
}

Status UnwrapManifest(const std::string& contents, Slice* payload) {
  if (contents.size() < kManifestEnvelopeBytes) {
    return Status::Corruption("torn lsm manifest: " +
                              std::to_string(contents.size()) + " bytes");
  }
  if (DecodeFixed32(contents.data()) != kManifestMagic) {
    return Status::Corruption("bad lsm manifest magic");
  }
  const uint32_t len = DecodeFixed32(contents.data() + 4);
  if (contents.size() < static_cast<size_t>(len) + kManifestEnvelopeBytes) {
    return Status::Corruption("torn lsm manifest: payload promises " +
                              std::to_string(len) + " bytes, file has " +
                              std::to_string(contents.size()));
  }
  const uint32_t expected =
      crc32c::Unmask(DecodeFixed32(contents.data() + 8 + len));
  const uint32_t actual = crc32c::Value(contents.data() + 8, len);
  if (expected != actual) {
    return Status::Corruption("lsm manifest checksum mismatch");
  }
  *payload = Slice(contents.data() + 8, len);
  return Status::OK();
}

std::string TableFileName(uint64_t table_id) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%08llu.sst",
           static_cast<unsigned long long>(table_id));
  return buf;
}

bool ParseTableFileName(const std::string& name, uint64_t* table_id) {
  if (name.size() < 5 || !name.ends_with(".sst")) return false;
  uint64_t id = 0;
  for (size_t i = 0; i + 4 < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    id = id * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *table_id = id;
  return true;
}

}  // namespace tu::lsm
