#include "lsm/table_format.h"

#include <cstdio>

namespace tu::lsm {

void Footer::EncodeTo(std::string* dst) const {
  const size_t start = dst->size();
  filter_handle.EncodeTo(dst);
  index_handle.EncodeTo(dst);
  dst->resize(start + kFooterSize - 8);  // pad
  PutFixed64(dst, kTableMagic);
}

Status Footer::DecodeFrom(const Slice& input) {
  if (input.size() < kFooterSize) {
    return Status::Corruption("footer too short");
  }
  const uint64_t magic = DecodeFixed64(input.data() + kFooterSize - 8);
  if (magic != kTableMagic) {
    return Status::Corruption("bad table magic");
  }
  Slice in(input.data(), kFooterSize - 8);
  if (!filter_handle.DecodeFrom(&in) || !index_handle.DecodeFrom(&in)) {
    return Status::Corruption("bad footer handles");
  }
  return Status::OK();
}

void TableMeta::EncodeTo(std::string* dst) const {
  PutVarint64(dst, table_id);
  PutVarint64(dst, file_size);
  PutVarint64(dst, num_entries);
  PutLengthPrefixedSlice(dst, smallest_key);
  PutLengthPrefixedSlice(dst, largest_key);
  PutVarint64(dst, min_series_id);
  PutVarint64(dst, max_series_id);
  PutFixed64(dst, static_cast<uint64_t>(min_ts));
  PutFixed64(dst, static_cast<uint64_t>(max_ts));
}

bool TableMeta::DecodeFrom(Slice* input) {
  Slice smallest, largest;
  if (!GetVarint64(input, &table_id) || !GetVarint64(input, &file_size) ||
      !GetVarint64(input, &num_entries) ||
      !GetLengthPrefixedSlice(input, &smallest) ||
      !GetLengthPrefixedSlice(input, &largest) ||
      !GetVarint64(input, &min_series_id) ||
      !GetVarint64(input, &max_series_id) || input->size() < 16) {
    return false;
  }
  smallest_key = smallest.ToString();
  largest_key = largest.ToString();
  min_ts = static_cast<int64_t>(DecodeFixed64(input->data()));
  max_ts = static_cast<int64_t>(DecodeFixed64(input->data() + 8));
  input->remove_prefix(16);
  return true;
}

std::string TableFileName(uint64_t table_id) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%08llu.sst",
           static_cast<unsigned long long>(table_id));
  return buf;
}

bool ParseTableFileName(const std::string& name, uint64_t* table_id) {
  if (name.size() < 5 || !name.ends_with(".sst")) return false;
  uint64_t id = 0;
  for (size_t i = 0; i + 4 < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    id = id * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *table_id = id;
  return true;
}

}  // namespace tu::lsm
