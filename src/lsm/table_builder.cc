#include "lsm/table_builder.h"

#include "compress/snappy_lite.h"
#include "lsm/key_format.h"
#include "lsm/memtable.h"
#include "util/crc32c.h"

namespace tu::lsm {

TableBuilder::TableBuilder(TableBuilderOptions options, TableSink* sink)
    : options_(options),
      sink_(sink),
      data_block_(options.restart_interval),
      index_block_(1),
      filter_(options.bloom_bits_per_key) {}

Status TableBuilder::Add(const Slice& key, const Slice& value) {
  if (pending_index_entry_) {
    // The previous data block ended; index it by its last key.
    std::string handle;
    pending_handle_.EncodeTo(&handle);
    index_block_.Add(last_data_block_key_, handle);
    pending_index_entry_ = false;
  }

  data_block_.Add(key, value);

  if (meta_.num_entries == 0) meta_.smallest_key = key.ToString();
  meta_.largest_key = key.ToString();
  ++meta_.num_entries;

  // Track ID/time bounds from the chunk user key; the bloom filter indexes
  // the 8-byte series/group ID prefix (queries probe by ID, not full key).
  const Slice user_key = InternalKeyUserKey(key);
  if (user_key.size() == kChunkKeySize) {
    const uint64_t id = ChunkKeyId(user_key);
    if (meta_.num_entries == 1 || id != last_filter_id_) {
      filter_.AddKey(Slice(user_key.data(), 8));
      last_filter_id_ = id;
    }
  }
  if (user_key.size() == kChunkKeySize) {
    const uint64_t id = ChunkKeyId(user_key);
    const int64_t ts = ChunkKeyTimestamp(user_key);
    meta_.min_series_id = std::min(meta_.min_series_id, id);
    meta_.max_series_id = std::max(meta_.max_series_id, id);
    meta_.min_ts = std::min(meta_.min_ts, ts);
    meta_.max_ts = std::max(meta_.max_ts, ts);
  }

  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    return FlushDataBlock();
  }
  return Status::OK();
}

Status TableBuilder::FlushDataBlock() {
  if (data_block_.empty()) return Status::OK();
  last_data_block_key_ = data_block_.last_key();
  const Slice contents = data_block_.Finish();
  TU_RETURN_IF_ERROR(WriteBlock(contents, &pending_handle_));
  pending_index_entry_ = true;
  data_block_.Reset();
  return Status::OK();
}

Status TableBuilder::WriteBlock(const Slice& contents, BlockHandle* handle) {
  Slice payload = contents;
  BlockCompression type = BlockCompression::kNone;
  if (options_.compress_blocks) {
    compress::SnappyLiteCompress(contents, &compress_scratch_);
    // Keep compression only if it saves at least 1/8th (LevelDB policy).
    if (compress_scratch_.size() < contents.size() - contents.size() / 8) {
      payload = Slice(compress_scratch_);
      type = BlockCompression::kSnappyLite;
    }
  }

  handle->offset = sink_->Size();
  handle->size = payload.size();
  TU_RETURN_IF_ERROR(sink_->Append(payload));

  char trailer[kBlockTrailerSize];
  trailer[0] = static_cast<char>(type);
  uint32_t crc = crc32c::Value(payload.data(), payload.size());
  crc = crc32c::Extend(crc, trailer, 1);
  EncodeFixed32(trailer + 1, crc32c::Mask(crc));
  return sink_->Append(Slice(trailer, kBlockTrailerSize));
}

Status TableBuilder::Finish(TableMeta* meta) {
  TU_RETURN_IF_ERROR(FlushDataBlock());
  if (pending_index_entry_) {
    std::string handle;
    pending_handle_.EncodeTo(&handle);
    index_block_.Add(last_data_block_key_, handle);
    pending_index_entry_ = false;
  }

  Footer footer;

  // Filter block (uncompressed: it is bit-addressed).
  {
    const std::string filter_data = filter_.Finish();
    footer.filter_handle.offset = sink_->Size();
    footer.filter_handle.size = filter_data.size();
    TU_RETURN_IF_ERROR(sink_->Append(filter_data));
  }

  // Index block.
  {
    const Slice contents = index_block_.Finish();
    TU_RETURN_IF_ERROR(WriteBlock(contents, &footer.index_handle));
  }

  std::string footer_bytes;
  footer.EncodeTo(&footer_bytes);
  TU_RETURN_IF_ERROR(sink_->Append(footer_bytes));

  meta_.file_size = sink_->Size();
  meta_.object_crc32c = sink_->crc();
  *meta = meta_;
  return Status::OK();
}

uint64_t TableBuilder::EstimatedSize() const {
  return sink_->Size() + data_block_.CurrentSizeEstimate();
}

}  // namespace tu::lsm
