// TableReader: reads SSTables from either storage tier through the
// TableSource abstraction. Fast-tier reads are positional file reads; the
// slow tier serves each block read as one S3 Get request — exactly the
// per-request cost structure of Eqs. 4/6. A shared block cache (the 1 GB
// LRU of §4.1) absorbs repeated slow-tier block fetches.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "cloud/block_store.h"
#include "cloud/object_store.h"
#include "lsm/block.h"
#include "lsm/iterator.h"
#include "lsm/table_format.h"
#include "query/read_context.h"
#include "util/lru_cache.h"
#include "util/status.h"

namespace tu::lsm {

/// Random-access byte source of one table.
class TableSource {
 public:
  virtual ~TableSource() = default;
  virtual Status ReadAt(uint64_t offset, size_t n, std::string* out) const = 0;
  virtual uint64_t Size() const = 0;
};

/// Fast-tier source (EBS-like positional reads).
class FastTableSource : public TableSource {
 public:
  static Status Open(cloud::BlockStore* store, const std::string& fname,
                     std::unique_ptr<TableSource>* out);

  Status ReadAt(uint64_t offset, size_t n, std::string* out) const override;
  uint64_t Size() const override { return file_->Size(); }

 private:
  explicit FastTableSource(std::unique_ptr<cloud::RandomAccessFile> file)
      : file_(std::move(file)) {}

  std::unique_ptr<cloud::RandomAccessFile> file_;
};

/// Whole-object slow-tier source: one Get downloads the entire table and
/// every ReadAt is served from memory. The footer/filter/index/data walk
/// of TableReader::Open otherwise costs 4+ ranged Gets — for tables known
/// to be tiny (rollup summaries are a few hundred bytes per partition)
/// the single download is strictly cheaper in both ops and latency.
class PrefetchedTableSource : public TableSource {
 public:
  static Status Open(cloud::ObjectStore* store, const std::string& key,
                     std::unique_ptr<TableSource>* out);

  Status ReadAt(uint64_t offset, size_t n, std::string* out) const override;
  uint64_t Size() const override { return data_.size(); }

 private:
  explicit PrefetchedTableSource(std::string data) : data_(std::move(data)) {}

  std::string data_;
};

/// Slow-tier source (S3-like ranged Gets; one Get per block read).
class SlowTableSource : public TableSource {
 public:
  static Status Open(cloud::ObjectStore* store, const std::string& key,
                     std::unique_ptr<TableSource>* out);

  Status ReadAt(uint64_t offset, size_t n, std::string* out) const override;
  uint64_t Size() const override { return size_; }

 private:
  SlowTableSource(cloud::ObjectStore* store, std::string key, uint64_t size)
      : store_(store), key_(std::move(key)), size_(size) {}

  cloud::ObjectStore* store_;
  std::string key_;
  uint64_t size_;
};

using BlockCache = LRUCache<Block>;

struct TableReaderOptions {
  /// Shared block cache; nullptr disables caching.
  BlockCache* block_cache = nullptr;
  /// Cache key prefix, unique per table (e.g. "sst:<table_id>").
  std::string cache_id;
  /// Whether this table's source is the slow object tier — lets per-query
  /// stats attribute block fetches to the tier that served them.
  bool on_slow = false;
  bool verify_checksums = true;
  /// Self-healing reads: on a corrupt block, evict the (possibly poisoned)
  /// cache entry and re-read from the source up to this many extra times —
  /// a transient on-read flip heals, at-rest rot keeps failing. 0 disables.
  int corrupt_read_retries = 2;
  /// Integrity counters (nullable; typically the owning LSM's stats):
  /// corrupt blocks detected on read, and how many of those healed on a
  /// cache-bypassing re-read.
  std::atomic<uint64_t>* corruptions_detected = nullptr;
  std::atomic<uint64_t>* corruptions_healed = nullptr;
};

class TableReader {
 public:
  static Status Open(TableReaderOptions options,
                     std::unique_ptr<TableSource> source,
                     std::unique_ptr<TableReader>* out);

  /// Iterator over the whole table (internal keys).
  std::unique_ptr<Iterator> NewIterator() const;

  /// Query-path iterator: accumulates block/cache counters into `stats`
  /// (nullable) and, when `upper_bound_user_key` is non-empty, stops
  /// fetching data blocks once the current block's last user key sorts
  /// strictly past the bound — with last-key index entries no later block
  /// can hold a key at or below it, so cold blocks past the query range
  /// are never read. `stats` must outlive the iterator.
  std::unique_ptr<Iterator> NewIterator(
      query::QueryStats* stats, std::string upper_bound_user_key) const;

  /// Bloom-filter test on a series/group ID: false means no chunk of that
  /// ID is in this table.
  bool MayContainId(uint64_t id) const;

  uint64_t Size() const { return source_->Size(); }

 private:
  TableReader(TableReaderOptions options, std::unique_ptr<TableSource> source)
      : options_(std::move(options)), source_(std::move(source)) {}

  Status ReadBlockContents(const BlockHandle& handle, std::string* out) const;
  /// Reads (through the cache if configured) the block at `handle`,
  /// counting cache/tier outcomes into `stats` (nullable).
  Status GetBlock(const BlockHandle& handle, std::shared_ptr<Block>* block,
                  query::QueryStats* stats) const;

  class TwoLevelIter;

  TableReaderOptions options_;
  std::unique_ptr<TableSource> source_;
  std::shared_ptr<Block> index_block_;
  std::string filter_;
};

}  // namespace tu::lsm
