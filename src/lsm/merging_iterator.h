// MergingIterator: k-way merge over child iterators in ascending internal
// key order — the §3.4 "merge iterator which connects the individual
// iterators of all related MemTables and SSTables".
#pragma once

#include <memory>
#include <vector>

#include "lsm/iterator.h"

namespace tu::lsm {

/// Takes ownership of the children. Yields entries of all children in
/// ascending key order; duplicate keys are yielded in child order (callers
/// place newer sources first and apply newest-wins at decode time).
std::unique_ptr<Iterator> NewMergingIterator(
    std::vector<std::unique_ptr<Iterator>> children);

}  // namespace tu::lsm
