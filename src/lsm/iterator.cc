#include "lsm/iterator.h"

#include "compress/chunk.h"
#include "lsm/key_format.h"
#include "lsm/memtable.h"

namespace tu::lsm {

Status DecodeChunkEntryBatch(const Slice& internal_key, const Slice& value,
                             int member_slot, query::SampleBatch* batch) {
  const Slice payload = ChunkValuePayload(value);
  Status s = member_slot >= 0
                 ? compress::DecodeGroupMemberBatch(
                       payload, static_cast<uint32_t>(member_slot), batch)
                 : compress::DecodeSeriesChunkBatch(payload, batch);
  if (s.ok()) batch->seq = InternalKeySeq(internal_key);
  return s;
}

Status Iterator::NextBatch(int member_slot, query::SampleBatch* batch) {
  batch->clear();
  if (!Valid()) return status();
  TU_RETURN_IF_ERROR(
      DecodeChunkEntryBatch(key(), value(), member_slot, batch));
  Next();
  return status();
}

}  // namespace tu::lsm
