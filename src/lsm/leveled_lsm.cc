#include "lsm/leveled_lsm.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "lsm/key_format.h"
#include "lsm/merging_iterator.h"
#include "util/memory_tracker.h"

namespace tu::lsm {

namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool RangesOverlap(const TableMeta& a, const TableMeta& b) {
  return Slice(a.smallest_key).compare(b.largest_key) <= 0 &&
         Slice(b.smallest_key).compare(a.largest_key) <= 0;
}

}  // namespace

LeveledLsm::LeveledLsm(cloud::TieredEnv* env, std::string name,
                       LeveledLsmOptions options, BlockCache* block_cache)
    : env_(env),
      name_(std::move(name)),
      options_(options),
      block_cache_(block_cache) {
  levels_.resize(options_.max_levels);
  if (options_.metrics != nullptr) {
    h_memflush_us_ = options_.metrics->histogram("lsm.memflush_us");
    h_compact_us_ = options_.metrics->histogram("lsm.compact_us");
    h_table_build_us_ = options_.metrics->histogram("lsm.table_build_us");
    trace_ = &options_.metrics->trace();
  }
}

LeveledLsm::~LeveledLsm() {
  if (mem_) {
    MemoryTracker::Global().Sub(
        MemCategory::kMemtable,
        static_cast<int64_t>(mem_->ApproximateMemoryUsage()));
  }
}

namespace {

std::unique_ptr<MemTable> NewTrackedMemTable() {
  auto mem = std::make_unique<MemTable>();
  MemoryTracker::Global().Add(
      MemCategory::kMemtable,
      static_cast<int64_t>(mem->ApproximateMemoryUsage()));
  return mem;
}

}  // namespace

Status LeveledLsm::Open() {
  TU_RETURN_IF_ERROR(env_->fast().CreateDir(name_));
  mem_ = NewTrackedMemTable();
  return Status::OK();
}

std::string LeveledLsm::FastName(uint64_t table_id) const {
  return name_ + "/" + TableFileName(table_id);
}

std::string LeveledLsm::SlowKey(uint64_t table_id) const {
  return name_ + "/" + TableFileName(table_id);
}

Status LeveledLsm::Put(const Slice& user_key, const Slice& value) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t before = mem_->ApproximateMemoryUsage();
  mem_->Add(next_seq_++, user_key, value);
  MemoryTracker::Global().Add(
      MemCategory::kMemtable,
      static_cast<int64_t>(mem_->ApproximateMemoryUsage() - before));
  if (mem_->ApproximateMemoryUsage() >= options_.memtable_bytes) {
    TU_RETURN_IF_ERROR(FlushMemTable());
    return MaybeCompact();
  }
  return Status::OK();
}

Status LeveledLsm::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!mem_->empty()) {
    TU_RETURN_IF_ERROR(FlushMemTable());
  }
  return MaybeCompact();
}

Status LeveledLsm::FlushMemTable() {
  const uint64_t flush_start_us = NowUs();
  auto it = mem_->NewIterator();
  it->SeekToFirst();
  std::vector<TableHandle> outputs;
  TU_RETURN_IF_ERROR(BuildTables(it.get(), 0, &outputs));
  // L0 keeps newest tables first.
  for (auto& t : outputs) {
    levels_[0].insert(levels_[0].begin(), std::move(t));
  }
  if (h_memflush_us_ != nullptr) {
    h_memflush_us_->Observe(NowUs() - flush_start_us);
  }
  if (trace_ != nullptr) {
    trace_->Record("flush", "tables=" + std::to_string(outputs.size()));
  }
  MemoryTracker::Global().Sub(
      MemCategory::kMemtable,
      static_cast<int64_t>(mem_->ApproximateMemoryUsage()));
  mem_ = NewTrackedMemTable();
  return Status::OK();
}

Status LeveledLsm::BuildTables(Iterator* input, int target_level,
                               std::vector<TableHandle>* outputs) {
  outputs->clear();
  const bool fast = LevelIsFast(target_level);

  std::unique_ptr<TableSink> sink;
  std::unique_ptr<TableBuilder> builder;
  uint64_t table_id = 0;
  uint64_t build_start_us = 0;

  auto open_output = [&]() -> Status {
    table_id = next_table_id_++;
    build_start_us = NowUs();
    if (fast) {
      std::unique_ptr<cloud::WritableFile> file;
      TU_RETURN_IF_ERROR(env_->fast().NewWritableFile(FastName(table_id), &file));
      sink = std::make_unique<FileTableSink>(std::move(file));
    } else {
      sink = std::make_unique<BufferTableSink>();
    }
    builder =
        std::make_unique<TableBuilder>(options_.table_options, sink.get());
    return Status::OK();
  };

  auto close_output = [&]() -> Status {
    if (!builder || builder->num_entries() == 0) {
      builder.reset();
      sink.reset();
      return Status::OK();
    }
    TableHandle handle;
    TU_RETURN_IF_ERROR(builder->Finish(&handle.meta));
    handle.meta.table_id = table_id;
    TU_RETURN_IF_ERROR(sink->Close());
    if (h_table_build_us_ != nullptr) {
      h_table_build_us_->Observe(NowUs() - build_start_us);
    }
    if (!fast) {
      auto* buf = static_cast<BufferTableSink*>(sink.get());
      TU_RETURN_IF_ERROR(
          env_->slow().PutObject(SlowKey(table_id), buf->buffer()));
      stats_.slow_bytes_written.fetch_add(buf->buffer().size(),
                                          std::memory_order_relaxed);
      handle.on_slow = true;
    }
    stats_.bytes_written.fetch_add(handle.meta.file_size,
                                   std::memory_order_relaxed);
    outputs->push_back(std::move(handle));
    builder.reset();
    sink.reset();
    return Status::OK();
  };

  for (; input->Valid(); input->Next()) {
    if (!builder) TU_RETURN_IF_ERROR(open_output());
    TU_RETURN_IF_ERROR(builder->Add(input->key(), input->value()));
    if (builder->EstimatedSize() >= options_.max_output_table_bytes) {
      TU_RETURN_IF_ERROR(close_output());
    }
  }
  TU_RETURN_IF_ERROR(input->status());
  return close_output();
}

Status LeveledLsm::MaybeCompact() {
  // Run compactions until every level is within its threshold.
  bool again = true;
  while (again) {
    again = false;
    if (static_cast<int>(levels_[0].size()) >= options_.l0_compaction_trigger) {
      TU_RETURN_IF_ERROR(CompactLevel(0));
      again = true;
      continue;
    }
    for (int level = 1; level < options_.max_levels - 1; ++level) {
      const uint64_t limit = static_cast<uint64_t>(
          options_.base_level_bytes *
          std::pow(options_.level_multiplier, level - 1));
      if (TotalBytes(level) > limit) {
        TU_RETURN_IF_ERROR(CompactLevel(level));
        again = true;
        break;
      }
    }
  }
  return Status::OK();
}

Status LeveledLsm::OpenReader(TableHandle* handle, bool fill_cache) {
  if (handle->reader) return Status::OK();
  if (handle->quarantined) {
    return Status::Corruption("table " +
                              std::to_string(handle->meta.table_id) +
                              " quarantined");
  }
  std::unique_ptr<TableSource> source;
  if (handle->on_slow) {
    TU_RETURN_IF_ERROR(SlowTableSource::Open(
        &env_->slow(), SlowKey(handle->meta.table_id), &source));
  } else {
    TU_RETURN_IF_ERROR(FastTableSource::Open(
        &env_->fast(), FastName(handle->meta.table_id), &source));
  }
  if (handle->meta.file_size != 0 && source->Size() != handle->meta.file_size) {
    handle->quarantined = true;
    stats_.runtime_quarantines.fetch_add(1, std::memory_order_relaxed);
    return Status::Corruption(
        "table " + std::to_string(handle->meta.table_id) + " size " +
        std::to_string(source->Size()) + " != expected " +
        std::to_string(handle->meta.file_size));
  }
  TableReaderOptions opts;
  opts.block_cache = fill_cache ? block_cache_ : nullptr;
  opts.cache_id = name_ + ":" + std::to_string(handle->meta.table_id);
  opts.on_slow = handle->on_slow;
  opts.corruptions_detected = &stats_.read_corruptions_detected;
  opts.corruptions_healed = &stats_.read_corruptions_healed;
  std::unique_ptr<TableReader> reader;
  Status s = TableReader::Open(opts, std::move(source), &reader);
  if (s.IsCorruption()) {
    // One copy per table in this backend: corruption that survives the
    // reader's own re-reads has nowhere to heal from.
    handle->quarantined = true;
    stats_.runtime_quarantines.fetch_add(1, std::memory_order_relaxed);
  }
  TU_RETURN_IF_ERROR(s);
  handle->reader = std::move(reader);
  return Status::OK();
}

Status LeveledLsm::DeleteTable(const TableHandle& handle, bool was_fast) {
  if (was_fast) {
    return env_->fast().DeleteFile(FastName(handle.meta.table_id));
  }
  return env_->slow().DeleteObject(SlowKey(handle.meta.table_id));
}

Status LeveledLsm::CompactLevel(int level) {
  const uint64_t start_us = NowUs();
  const int next = level + 1;

  // Select victims: all of L0 (overlapping), or one table round-robin.
  std::vector<TableHandle> victims;
  if (level == 0) {
    victims = std::move(levels_[0]);
    levels_[0].clear();
  } else {
    if (levels_[level].empty()) return Status::OK();
    const size_t idx = compaction_pointer_ % levels_[level].size();
    victims.push_back(levels_[level][idx]);
    levels_[level].erase(levels_[level].begin() + idx);
    ++compaction_pointer_;
  }

  // Key range of the victims.
  TableMeta range;
  range.smallest_key = victims[0].meta.smallest_key;
  range.largest_key = victims[0].meta.largest_key;
  for (const auto& v : victims) {
    if (Slice(v.meta.smallest_key).compare(range.smallest_key) < 0) {
      range.smallest_key = v.meta.smallest_key;
    }
    if (Slice(v.meta.largest_key).compare(range.largest_key) > 0) {
      range.largest_key = v.meta.largest_key;
    }
  }

  // All overlapping tables in the next level join the merge ("at least one
  // overlapping SSTable needs to be read from the next level", §2.4).
  std::vector<TableHandle> next_inputs;
  auto& next_level = levels_[next];
  for (auto it = next_level.begin(); it != next_level.end();) {
    if (RangesOverlap(it->meta, range)) {
      next_inputs.push_back(std::move(*it));
      it = next_level.erase(it);
    } else {
      ++it;
    }
  }

  // Merge: victims (newer) first so equal internal keys keep newest order.
  std::vector<std::unique_ptr<Iterator>> children;
  std::vector<std::pair<TableHandle, bool>> consumed;  // handle, was_fast
  for (auto& v : victims) {
    TU_RETURN_IF_ERROR(OpenReader(&v, /*fill_cache=*/false));
    stats_.tables_read.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_read.fetch_add(v.meta.file_size, std::memory_order_relaxed);
    children.push_back(v.reader->NewIterator());
    consumed.emplace_back(std::move(v), LevelIsFast(level));
  }
  for (auto& v : next_inputs) {
    TU_RETURN_IF_ERROR(OpenReader(&v, /*fill_cache=*/false));
    stats_.tables_read.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_read.fetch_add(v.meta.file_size, std::memory_order_relaxed);
    children.push_back(v.reader->NewIterator());
    consumed.emplace_back(std::move(v), LevelIsFast(next));
  }
  auto merged = NewMergingIterator(std::move(children));
  merged->SeekToFirst();

  std::vector<TableHandle> outputs;
  TU_RETURN_IF_ERROR(BuildTables(merged.get(), next, &outputs));

  // Install outputs sorted by smallest key; delete inputs.
  for (auto& t : outputs) next_level.push_back(std::move(t));
  std::sort(next_level.begin(), next_level.end(),
            [](const TableHandle& a, const TableHandle& b) {
              return Slice(a.meta.smallest_key).compare(b.meta.smallest_key) <
                     0;
            });
  for (auto& [handle, was_fast] : consumed) {
    TU_RETURN_IF_ERROR(DeleteTable(handle, was_fast));
  }

  stats_.compactions.fetch_add(1, std::memory_order_relaxed);
  const uint64_t compact_us = NowUs() - start_us;
  stats_.total_us.fetch_add(compact_us, std::memory_order_relaxed);
  if (h_compact_us_ != nullptr) h_compact_us_->Observe(compact_us);
  if (trace_ != nullptr) {
    trace_->Record("compact.leveled", "level=" + std::to_string(level) +
                                          " us=" + std::to_string(compact_us));
  }
  return Status::OK();
}

Status LeveledLsm::NewIteratorForId(uint64_t id, const ReadContext& ctx,
                                    std::unique_ptr<Iterator>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t t0 = ctx.t0;
  const int64_t t1 = ctx.t1;
  const ReadScope& scope = ctx.scope;
  query::QueryStats* qs = ctx.stats;
  const std::string lo = MakeChunkKey(id, t0);
  const std::string hi = MakeChunkKey(id, t1);

  // Breaker open: skip slow-level tables without touching them — a cached
  // reader would still fail its lazy per-block Gets mid-iteration.
  const cloud::CircuitBreaker& slow_breaker = env_->slow().breaker();
  const bool slow_tier_down =
      slow_breaker.enabled() &&
      slow_breaker.state() == cloud::BreakerState::kOpen;

  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(mem_->NewIterator());
  for (int level = 0; level < options_.max_levels; ++level) {
    for (auto& handle : levels_[level]) {
      if (qs != nullptr) ++qs->tables_considered;
      // Chunks have no time-partition bound under this backend, so a chunk
      // starting before t0 may still reach into the range — only the
      // "starts past t1" side of the time meta is safe to prune on.
      if (handle.meta.min_ts > t1) {
        if (qs != nullptr) ++qs->tables_pruned_time;
        continue;
      }
      if (Slice(handle.meta.largest_key).compare(lo) < 0) {
        if (qs != nullptr) ++qs->tables_pruned_time;
        continue;
      }
      if (Slice(handle.meta.smallest_key).compare(hi) > 0 &&
          InternalKeyUserKey(handle.meta.smallest_key).compare(hi) > 0) {
        if (qs != nullptr) ++qs->tables_pruned_id;
        continue;
      }
      if (handle.meta.min_series_id > id || handle.meta.max_series_id < id) {
        if (qs != nullptr) ++qs->tables_pruned_id;
        continue;
      }
      if (scope.allow_partial && handle.on_slow && slow_tier_down) {
        const int64_t lo_ts = std::max(handle.meta.min_ts, t0);
        if (scope.missing != nullptr && lo_ts <= t1) {
          scope.missing->emplace_back(lo_ts, t1);
        }
        if (qs != nullptr) ++qs->tables_skipped_unreachable;
        continue;
      }
      Status s = OpenReader(&handle, ctx.fill_cache);
      if (!s.ok()) {
        // Without time partitioning a chunk can extend arbitrarily past
        // its start timestamp, so the missing span is conservative: from
        // the table's first chunk start to the end of the query range.
        // A corrupt (quarantined) table degrades the same way on either
        // tier — detection must never become a wrong result.
        if (scope.allow_partial &&
            (s.IsCorruption() ||
             (handle.on_slow &&
              (s.IsUnavailable() || s.IsIOError() || s.IsBusy())))) {
          const int64_t lo_ts = std::max(handle.meta.min_ts, t0);
          if (scope.missing != nullptr && lo_ts <= t1) {
            scope.missing->emplace_back(lo_ts, t1);
          }
          if (qs != nullptr) ++qs->tables_skipped_unreachable;
          continue;
        }
        return s;
      }
      if (!handle.reader->MayContainId(id)) {
        if (qs != nullptr) ++qs->tables_pruned_bloom;
        continue;
      }
      children.push_back(handle.reader->NewIterator(qs, MakeChunkKey(id, t1)));
    }
  }
  *out = NewMergingIterator(std::move(children));
  return Status::OK();
}

Status LeveledLsm::NewFullIterator(std::unique_ptr<Iterator>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(mem_->NewIterator());
  for (auto& level : levels_) {
    for (auto& handle : level) {
      TU_RETURN_IF_ERROR(OpenReader(&handle));
      children.push_back(handle.reader->NewIterator());
    }
  }
  *out = NewMergingIterator(std::move(children));
  return Status::OK();
}

uint64_t LeveledLsm::NumTables(int level) const {
  return levels_[level].size();
}

uint64_t LeveledLsm::TotalBytes(int level) const {
  uint64_t total = 0;
  for (const auto& t : levels_[level]) total += t.meta.file_size;
  return total;
}

}  // namespace tu::lsm
