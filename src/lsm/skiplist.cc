#include "lsm/skiplist.h"

#include <cstring>

namespace tu::lsm {

struct SkipList::Node {
  Slice key;

  Node* Next(int level) {
    return next_[level].load(std::memory_order_acquire);
  }
  void SetNext(int level, Node* node) {
    next_[level].store(node, std::memory_order_release);
  }

  // Variable-length tail; allocated with the node.
  std::atomic<Node*> next_[1];
};

SkipList::SkipList(Arena* arena) : arena_(arena) {
  head_ = NewNode(Slice(), kMaxHeight);
  for (int i = 0; i < kMaxHeight; ++i) head_->SetNext(i, nullptr);
}

SkipList::Node* SkipList::NewNode(const Slice& key, int height) {
  char* mem = arena_->AllocateAligned(
      sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
  Node* node = new (mem) Node();
  node->key = key;
  return node;
}

int SkipList::RandomHeight() {
  int height = 1;
  while (height < kMaxHeight && rnd_.OneIn(4)) ++height;
  return height;
}

SkipList::Node* SkipList::FindGreaterOrEqual(const Slice& key,
                                             Node** prev) const {
  Node* x = head_;
  int level = max_height_.load(std::memory_order_relaxed) - 1;
  while (true) {
    Node* next = x->Next(level);
    if (next != nullptr && next->key.compare(key) < 0) {
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) return next;
      --level;
    }
  }
}

void SkipList::Insert(const Slice& key) {
  Node* prev[kMaxHeight];
  Node* x = FindGreaterOrEqual(key, prev);
  assert(x == nullptr || x->key != key);  // no duplicates

  const int height = RandomHeight();
  const int cur_max = max_height_.load(std::memory_order_relaxed);
  if (height > cur_max) {
    for (int i = cur_max; i < height; ++i) prev[i] = head_;
    max_height_.store(height, std::memory_order_relaxed);
  }

  Node* node = NewNode(key, height);
  for (int i = 0; i < height; ++i) {
    node->SetNext(i, prev[i]->Next(i));
    prev[i]->SetNext(i, node);
  }
}

bool SkipList::Contains(const Slice& key) const {
  Node* x = FindGreaterOrEqual(key, nullptr);
  return x != nullptr && x->key == key;
}

Slice SkipList::Iterator::key() const {
  return static_cast<const Node*>(node_)->key;
}

void SkipList::Iterator::Next() {
  node_ = const_cast<Node*>(static_cast<const Node*>(node_))->Next(0);
}

void SkipList::Iterator::SeekToFirst() { node_ = list_->head_->Next(0); }

void SkipList::Iterator::Seek(const Slice& target) {
  node_ = list_->FindGreaterOrEqual(target, nullptr);
}

}  // namespace tu::lsm
