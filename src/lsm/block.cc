#include "lsm/block.h"

#include <algorithm>
#include <cstring>

#include "util/coding.h"

namespace tu::lsm {

BlockBuilder::BlockBuilder(int restart_interval)
    : restart_interval_(restart_interval) {
  restarts_.push_back(0);
}

void BlockBuilder::Add(const Slice& key, const Slice& value) {
  size_t shared = 0;
  if (counter_ < restart_interval_) {
    const size_t min_len = std::min(last_key_.size(), key.size());
    while (shared < min_len && last_key_[shared] == key[shared]) ++shared;
  } else {
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    counter_ = 0;
  }
  const size_t unshared = key.size() - shared;

  PutVarint32(&buffer_, static_cast<uint32_t>(shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(unshared));
  PutVarint32(&buffer_, static_cast<uint32_t>(value.size()));
  buffer_.append(key.data() + shared, unshared);
  buffer_.append(value.data(), value.size());

  last_key_.resize(shared);
  last_key_.append(key.data() + shared, unshared);
  ++counter_;
}

Slice BlockBuilder::Finish() {
  for (uint32_t r : restarts_) PutFixed32(&buffer_, r);
  PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
  finished_ = true;
  return Slice(buffer_);
}

void BlockBuilder::Reset() {
  buffer_.clear();
  restarts_.clear();
  restarts_.push_back(0);
  counter_ = 0;
  finished_ = false;
  last_key_.clear();
}

size_t BlockBuilder::CurrentSizeEstimate() const {
  return buffer_.size() + restarts_.size() * sizeof(uint32_t) +
         sizeof(uint32_t);
}

// ---------------------------------------------------------------------------

Block::Block(const Slice& contents) : data_(contents.data(), contents.size()) {
  if (data_.size() < sizeof(uint32_t)) {
    malformed_ = true;
    return;
  }
  num_restarts_ = DecodeFixed32(data_.data() + data_.size() - 4);
  const size_t trailer = (1 + static_cast<size_t>(num_restarts_)) * 4;
  if (trailer > data_.size()) {
    malformed_ = true;
    return;
  }
  restart_offset_ = static_cast<uint32_t>(data_.size() - trailer);
}

class Block::Iter : public Iterator {
 public:
  Iter(const Block* block)
      : data_(block->data_.data()),
        restarts_(block->restart_offset_),
        num_restarts_(block->num_restarts_),
        malformed_(block->malformed_) {
    current_ = restarts_;  // invalid until positioned
    next_offset_ = restarts_;
  }

  bool Valid() const override { return !malformed_ && current_ < restarts_; }

  void SeekToFirst() override {
    if (malformed_ || num_restarts_ == 0) {
      current_ = restarts_;
      return;
    }
    SeekToRestart(0);
    ParseNextEntry();
  }

  void Seek(const Slice& target) override {
    if (malformed_) return;
    // Binary search over restart points for the last restart whose key is
    // < target, then scan linearly.
    uint32_t left = 0, right = num_restarts_ ? num_restarts_ - 1 : 0;
    while (left < right) {
      const uint32_t mid = (left + right + 1) / 2;
      Slice mid_key;
      if (!RestartKey(mid, &mid_key)) {
        MarkMalformed();
        return;
      }
      if (mid_key.compare(target) < 0) {
        left = mid;
      } else {
        right = mid - 1;
      }
    }
    SeekToRestart(left);
    while (true) {
      if (!ParseNextEntry()) return;
      if (Slice(key_).compare(target) >= 0) return;
    }
  }

  void Next() override { ParseNextEntry(); }

  Slice key() const override { return Slice(key_); }
  Slice value() const override { return value_; }
  Status status() const override {
    return malformed_ ? Status::Corruption("malformed block") : Status::OK();
  }

 private:
  void MarkMalformed() {
    malformed_ = true;
    current_ = restarts_;
  }

  uint32_t RestartPoint(uint32_t i) const {
    return DecodeFixed32(data_ + restarts_ + i * 4);
  }

  /// Decodes the full key at restart point i (shared_len is 0 there).
  bool RestartKey(uint32_t i, Slice* key) {
    const char* p = data_ + RestartPoint(i);
    const char* limit = data_ + restarts_;
    uint32_t shared, unshared, value_len;
    p = GetVarint32Ptr(p, limit, &shared);
    if (!p) return false;
    p = GetVarint32Ptr(p, limit, &unshared);
    if (!p) return false;
    p = GetVarint32Ptr(p, limit, &value_len);
    if (!p || shared != 0) return false;
    *key = Slice(p, unshared);
    return true;
  }

  void SeekToRestart(uint32_t i) {
    key_.clear();
    next_offset_ = RestartPoint(i);
  }

  /// Parses the entry at next_offset_; returns false at block end.
  bool ParseNextEntry() {
    current_ = next_offset_;
    if (current_ >= restarts_) {
      current_ = restarts_;
      return false;
    }
    const char* p = data_ + current_;
    const char* limit = data_ + restarts_;
    uint32_t shared, unshared, value_len;
    p = GetVarint32Ptr(p, limit, &shared);
    if (!p) {
      MarkMalformed();
      return false;
    }
    p = GetVarint32Ptr(p, limit, &unshared);
    if (!p) {
      MarkMalformed();
      return false;
    }
    p = GetVarint32Ptr(p, limit, &value_len);
    if (!p || p + unshared + value_len > limit || shared > key_.size()) {
      MarkMalformed();
      return false;
    }
    key_.resize(shared);
    key_.append(p, unshared);
    value_ = Slice(p + unshared, value_len);
    next_offset_ = static_cast<uint32_t>((p + unshared + value_len) - data_);
    return true;
  }

  const char* data_;
  const uint32_t restarts_;      // offset of the restart array
  const uint32_t num_restarts_;
  bool malformed_;
  uint32_t current_ = 0;         // offset of the current entry
  uint32_t next_offset_ = 0;
  std::string key_;
  Slice value_;
};

std::unique_ptr<Iterator> Block::NewIterator() const {
  auto it = std::make_unique<Iter>(this);
  // Start invalid until positioned.
  return it;
}

}  // namespace tu::lsm
