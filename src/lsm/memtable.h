// MemTable: skiplist-backed write buffer. Internal keys append an inverted
// global sequence number to the 16-byte chunk key so duplicate chunk keys
// (e.g. repeated out-of-order single-sample chunks) coexist, newest first —
// "TimeUnion will keep the data sample from the newest SSTable" (§3.3).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "lsm/iterator.h"
#include "lsm/skiplist.h"
#include "util/arena.h"
#include "util/status.h"

namespace tu::lsm {

constexpr size_t kInternalKeySize = 24;  // 16-byte chunk key + 8-byte ~seq

/// Builds an internal key: user_key + big-endian(~seq), so ascending order
/// sorts equal user keys newest-seq first.
std::string MakeInternalKey(const Slice& user_key, uint64_t seq);

inline Slice InternalKeyUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

/// Sequence number encoded in the internal key.
uint64_t InternalKeySeq(const Slice& internal_key);

class MemTable {
 public:
  MemTable();

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Adds an entry. `seq` must be globally increasing.
  void Add(uint64_t seq, const Slice& user_key, const Slice& value);

  /// Iterator yielding internal keys (24 bytes) and raw values.
  std::unique_ptr<Iterator> NewIterator() const;

  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }
  uint64_t num_entries() const { return num_entries_; }
  bool empty() const { return num_entries_ == 0; }

  /// Smallest/largest chunk starting timestamp inserted (flush routing).
  int64_t min_ts() const { return min_ts_; }
  int64_t max_ts() const { return max_ts_; }

 private:
  Arena arena_;
  SkipList table_;
  uint64_t num_entries_ = 0;
  int64_t min_ts_ = INT64_MAX;
  int64_t max_ts_ = INT64_MIN;
};

}  // namespace tu::lsm
