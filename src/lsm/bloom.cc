#include "lsm/bloom.h"

namespace tu::lsm {

uint32_t BloomHash(const Slice& key) {
  // FNV-1a style mixing; sufficient spread for filter purposes.
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < key.size(); ++i) {
    h ^= static_cast<uint8_t>(key[i]);
    h *= 16777619u;
  }
  return h;
}

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key)
    : bits_per_key_(bits_per_key) {
  // k = ln(2) * bits/key, clamped like LevelDB.
  k_ = static_cast<int>(bits_per_key * 0.69);
  if (k_ < 1) k_ = 1;
  if (k_ > 30) k_ = 30;
}

void BloomFilterBuilder::AddKey(const Slice& key) {
  hashes_.push_back(BloomHash(key));
}

std::string BloomFilterBuilder::Finish() {
  size_t bits = hashes_.size() * static_cast<size_t>(bits_per_key_);
  if (bits < 64) bits = 64;
  const size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string result(bytes, '\0');
  for (uint32_t h : hashes_) {
    const uint32_t delta = (h >> 17) | (h << 15);  // double hashing
    for (int j = 0; j < k_; ++j) {
      const size_t bitpos = h % bits;
      result[bitpos / 8] |= static_cast<char>(1 << (bitpos % 8));
      h += delta;
    }
  }
  result.push_back(static_cast<char>(k_));
  return result;
}

bool BloomFilterMayContain(const Slice& filter, const Slice& key) {
  if (filter.size() < 2) return true;
  const size_t bytes = filter.size() - 1;
  const size_t bits = bytes * 8;
  const int k = filter[filter.size() - 1];
  if (k < 1 || k > 30) return true;  // treat unknown format as match

  uint32_t h = BloomHash(key);
  const uint32_t delta = (h >> 17) | (h << 15);
  for (int j = 0; j < k; ++j) {
    const size_t bitpos = h % bits;
    if ((filter[bitpos / 8] & (1 << (bitpos % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace tu::lsm
