#include "lsm/table_reader.h"

#include "cloud/retry_policy.h"
#include "compress/snappy_lite.h"
#include "lsm/bloom.h"
#include "lsm/memtable.h"
#include "util/crc32c.h"

namespace tu::lsm {

Status FastTableSource::Open(cloud::BlockStore* store, const std::string& fname,
                             std::unique_ptr<TableSource>* out) {
  std::unique_ptr<cloud::RandomAccessFile> file;
  TU_RETURN_IF_ERROR(store->NewRandomAccessFile(fname, &file));
  out->reset(new FastTableSource(std::move(file)));
  return Status::OK();
}

Status FastTableSource::ReadAt(uint64_t offset, size_t n,
                               std::string* out) const {
  Slice result;
  TU_RETURN_IF_ERROR(file_->Read(offset, n, &result, out));
  out->resize(result.size());
  if (result.size() != n) {
    return Status::Corruption("short table read");
  }
  return Status::OK();
}

Status PrefetchedTableSource::Open(cloud::ObjectStore* store,
                                   const std::string& key,
                                   std::unique_ptr<TableSource>* out) {
  std::string data;
  TU_RETURN_IF_ERROR(cloud::RunWithRetry(
      store->sim().retry, &store->counters(), "get " + key,
      [&] { return store->GetObject(key, &data); }));
  out->reset(new PrefetchedTableSource(std::move(data)));
  return Status::OK();
}

Status PrefetchedTableSource::ReadAt(uint64_t offset, size_t n,
                                     std::string* out) const {
  if (offset > data_.size() || n > data_.size() - offset) {
    return Status::Corruption("short table read");
  }
  out->assign(data_.data() + offset, n);
  return Status::OK();
}

Status SlowTableSource::Open(cloud::ObjectStore* store, const std::string& key,
                             std::unique_ptr<TableSource>* out) {
  uint64_t size = 0;
  TU_RETURN_IF_ERROR(cloud::RunWithRetry(
      store->sim().retry, &store->counters(), "stat " + key,
      [&] { return store->ObjectSize(key, &size); }));
  out->reset(new SlowTableSource(store, key, size));
  return Status::OK();
}

Status SlowTableSource::ReadAt(uint64_t offset, size_t n,
                               std::string* out) const {
  // Block fetches hit the object store per call; transient throttling here
  // would otherwise fail a whole query.
  TU_RETURN_IF_ERROR(cloud::RunWithRetry(
      store_->sim().retry, &store_->counters(), "get " + key_,
      [&] { return store_->GetRange(key_, offset, n, out); }));
  if (out->size() != n) {
    return Status::Corruption("short object read");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------

Status TableReader::Open(TableReaderOptions options,
                         std::unique_ptr<TableSource> source,
                         std::unique_ptr<TableReader>* out) {
  const uint64_t size = source->Size();
  if (size < kFooterSize) return Status::Corruption("table too small");

  std::string footer_bytes;
  TU_RETURN_IF_ERROR(
      source->ReadAt(size - kFooterSize, kFooterSize, &footer_bytes));
  Footer footer;
  TU_RETURN_IF_ERROR(footer.DecodeFrom(footer_bytes));

  std::unique_ptr<TableReader> reader(
      new TableReader(std::move(options), std::move(source)));

  // Index block is pinned for the reader's lifetime.
  std::string index_contents;
  TU_RETURN_IF_ERROR(
      reader->ReadBlockContents(footer.index_handle, &index_contents));
  reader->index_block_ = std::make_shared<Block>(Slice(index_contents));

  // Filter block (raw bytes, no trailer).
  if (footer.filter_handle.size > 0) {
    TU_RETURN_IF_ERROR(reader->source_->ReadAt(footer.filter_handle.offset,
                                               footer.filter_handle.size,
                                               &reader->filter_));
  }

  *out = std::move(reader);
  return Status::OK();
}

Status TableReader::ReadBlockContents(const BlockHandle& handle,
                                      std::string* out) const {
  std::string raw;
  TU_RETURN_IF_ERROR(
      source_->ReadAt(handle.offset, handle.size + kBlockTrailerSize, &raw));
  const char* trailer = raw.data() + handle.size;

  if (options_.verify_checksums) {
    const uint32_t expected = crc32c::Unmask(DecodeFixed32(trailer + 1));
    uint32_t actual = crc32c::Value(raw.data(), handle.size);
    actual = crc32c::Extend(actual, trailer, 1);
    if (expected != actual) {
      return Status::Corruption("block checksum mismatch");
    }
  }

  const auto type = static_cast<BlockCompression>(trailer[0]);
  switch (type) {
    case BlockCompression::kNone:
      out->assign(raw.data(), handle.size);
      return Status::OK();
    case BlockCompression::kSnappyLite:
      return compress::SnappyLiteUncompress(Slice(raw.data(), handle.size),
                                            out);
  }
  return Status::Corruption("unknown block compression");
}

Status TableReader::GetBlock(const BlockHandle& handle,
                             std::shared_ptr<Block>* block,
                             query::QueryStats* stats) const {
  std::string cache_key;
  if (options_.block_cache != nullptr) {
    cache_key = options_.cache_id + ":" + std::to_string(handle.offset);
    if (auto cached = options_.block_cache->Lookup(cache_key)) {
      if (stats != nullptr) ++stats->cache_hits;
      *block = std::move(cached);
      return Status::OK();
    }
    if (stats != nullptr) ++stats->cache_misses;
  }
  std::string contents;
  Status s = ReadBlockContents(handle, &contents);
  if (s.IsCorruption() && options_.corrupt_read_retries > 0) {
    // Self-healing read: the bytes may have been mangled in flight (or a
    // poisoned entry may still sit in the cache under this key). Evict and
    // re-read from the source — a transient flip heals, at-rest rot fails
    // every attempt and surfaces to the caller for tier fallback.
    if (options_.corruptions_detected != nullptr) {
      options_.corruptions_detected->fetch_add(1, std::memory_order_relaxed);
    }
    for (int attempt = 0;
         attempt < options_.corrupt_read_retries && s.IsCorruption();
         ++attempt) {
      if (options_.block_cache != nullptr) {
        options_.block_cache->Erase(cache_key);
      }
      s = ReadBlockContents(handle, &contents);
    }
    if (s.ok() && options_.corruptions_healed != nullptr) {
      options_.corruptions_healed->fetch_add(1, std::memory_order_relaxed);
    }
  }
  TU_RETURN_IF_ERROR(s);
  if (stats != nullptr) {
    stats->block_bytes_read += contents.size();
    if (options_.on_slow) ++stats->slow_tier_fetches;
  }
  auto parsed = std::make_shared<Block>(Slice(contents));
  if (options_.block_cache != nullptr) {
    options_.block_cache->Insert(cache_key, parsed, parsed->size());
  }
  *block = std::move(parsed);
  return Status::OK();
}

bool TableReader::MayContainId(uint64_t id) const {
  if (filter_.empty()) return true;
  std::string id_key;
  PutBigEndian64(&id_key, id);
  return BloomFilterMayContain(filter_, id_key);
}

// ---------------------------------------------------------------------------
// Two-level iterator: index block entries -> data block iterators.
// ---------------------------------------------------------------------------

class TableReader::TwoLevelIter : public Iterator {
 public:
  TwoLevelIter(const TableReader* table, query::QueryStats* stats,
               std::string upper_bound_user_key)
      : table_(table),
        stats_(stats),
        upper_bound_user_key_(std::move(upper_bound_user_key)),
        index_iter_(table->index_block_->NewIterator()) {}

  bool Valid() const override {
    return data_iter_ != nullptr && data_iter_->Valid();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (data_iter_) data_iter_->SeekToFirst();
    SkipEmptyBlocksForward();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (data_iter_) data_iter_->Seek(target);
    SkipEmptyBlocksForward();
  }

  void Next() override {
    data_iter_->Next();
    SkipEmptyBlocksForward();
  }

  Slice key() const override { return data_iter_->key(); }
  Slice value() const override { return data_iter_->value(); }
  Status status() const override { return status_; }

  /// Leaf override of the batched read path: decodes straight off the
  /// pinned data block's entry, skipping the base implementation's extra
  /// virtual dispatches through this iterator.
  Status NextBatch(int member_slot, query::SampleBatch* batch) override {
    batch->clear();
    if (!Valid()) return status_;
    TU_RETURN_IF_ERROR(DecodeChunkEntryBatch(data_iter_->key(),
                                             data_iter_->value(), member_slot,
                                             batch));
    Next();
    return status_;
  }

 private:
  void InitDataBlock() {
    data_iter_.reset();
    data_block_.reset();
    if (!index_iter_->Valid()) return;
    BlockHandle handle;
    Slice handle_bytes = index_iter_->value();
    if (!handle.DecodeFrom(&handle_bytes)) {
      status_ = Status::Corruption("bad index entry");
      return;
    }
    Status s = table_->GetBlock(handle, &data_block_, stats_);
    if (!s.ok()) {
      status_ = s;
      return;
    }
    if (stats_ != nullptr) ++stats_->blocks_read;
    data_iter_ = data_block_->NewIterator();
  }

  /// Index entries carry the LAST internal key of their block: once that
  /// user key sorts strictly past the upper bound, every later block lies
  /// entirely past it too, so the iterator can stop without fetching them.
  /// Equality must continue — the next block may open with the same user
  /// key at an older sequence number, which newest-wins dedup still needs.
  bool PastUpperBound() const {
    return !upper_bound_user_key_.empty() && index_iter_->Valid() &&
           InternalKeyUserKey(index_iter_->key())
                   .compare(upper_bound_user_key_) > 0;
  }

  void SkipEmptyBlocksForward() {
    while (data_iter_ != nullptr && !data_iter_->Valid()) {
      if (PastUpperBound()) {
        // Count the data blocks the bound saved us from fetching, then
        // park the iterator in the exhausted state. Walking the remaining
        // index entries is cheap: the index block is pinned in memory.
        if (stats_ != nullptr) {
          for (index_iter_->Next(); index_iter_->Valid();
               index_iter_->Next()) {
            ++stats_->blocks_pruned;
          }
        }
        data_iter_.reset();
        data_block_.reset();
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (data_iter_) data_iter_->SeekToFirst();
      if (!index_iter_->Valid()) return;
    }
  }

  const TableReader* table_;
  query::QueryStats* stats_;
  const std::string upper_bound_user_key_;
  std::unique_ptr<Iterator> index_iter_;
  std::shared_ptr<Block> data_block_;
  std::unique_ptr<Iterator> data_iter_;
  Status status_;
};

std::unique_ptr<Iterator> TableReader::NewIterator() const {
  return std::make_unique<TwoLevelIter>(this, nullptr, std::string());
}

std::unique_ptr<Iterator> TableReader::NewIterator(
    query::QueryStats* stats, std::string upper_bound_user_key) const {
  return std::make_unique<TwoLevelIter>(this, stats,
                                        std::move(upper_bound_user_key));
}

}  // namespace tu::lsm
