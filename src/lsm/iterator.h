// Iterator: the LevelDB-style cursor interface shared by memtables, blocks,
// SSTables and the merging iterator (§3.4 Get path). The vectorized read
// path adds NextBatch(): one call decodes the whole chunk at the cursor
// into a column batch and advances past it, so draining a table costs one
// virtual dispatch per chunk instead of three per sample.
#pragma once

#include "query/sample_batch.h"
#include "util/slice.h"
#include "util/status.h"

namespace tu::lsm {

class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator() = default;

  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  /// Positions at the first entry with key >= target.
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;

  /// Valid() required for key()/value().
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;
  virtual Status status() const = 0;

  /// Batched read path: bulk-decodes the chunk entry at the current
  /// position into `batch` (`member_slot` >= 0 selects that column of a
  /// group chunk; -1 decodes an individual-series chunk), sets
  /// `batch->seq` from the internal key, and advances past the entry.
  /// When !Valid(), returns status() and leaves `batch` empty — callers
  /// that need to distinguish exhaustion from a zero-sample chunk check
  /// Valid() first. The default implementation decodes through key()/
  /// value(); leaf iterators override it to skip the extra dispatches.
  virtual Status NextBatch(int member_slot, query::SampleBatch* batch);
};

/// Shared body of the NextBatch implementations: bulk-decodes one chunk
/// entry (type byte + payload) into `batch` and stamps `batch->seq` from
/// the internal key. Does not advance anything.
Status DecodeChunkEntryBatch(const Slice& internal_key, const Slice& value,
                             int member_slot, query::SampleBatch* batch);

}  // namespace tu::lsm
