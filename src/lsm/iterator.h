// Iterator: the LevelDB-style cursor interface shared by memtables, blocks,
// SSTables and the merging iterator (§3.4 Get path).
#pragma once

#include "util/slice.h"
#include "util/status.h"

namespace tu::lsm {

class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator() = default;

  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  /// Positions at the first entry with key >= target.
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;

  /// Valid() required for key()/value().
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;
  virtual Status status() const = 0;
};

}  // namespace tu::lsm
