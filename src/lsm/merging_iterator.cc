#include "lsm/merging_iterator.h"

namespace tu::lsm {

namespace {

class MergingIterator : public Iterator {
 public:
  explicit MergingIterator(std::vector<std::unique_ptr<Iterator>> children)
      : children_(std::move(children)) {}

  bool Valid() const override { return current_ >= 0; }

  void SeekToFirst() override {
    for (auto& child : children_) child->SeekToFirst();
    FindSmallest();
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) child->Seek(target);
    FindSmallest();
  }

  void Next() override {
    children_[current_]->Next();
    FindSmallest();
  }

  Slice key() const override { return children_[current_]->key(); }
  Slice value() const override { return children_[current_]->value(); }

  Status status() const override {
    if (!status_.ok()) return status_;
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

 private:
  void FindSmallest() {
    current_ = -1;
    for (size_t i = 0; i < children_.size(); ++i) {
      if (!children_[i]->Valid()) {
        // Latch the first child error so the merge fails fast instead of
        // yielding a silently incomplete stream and only surfacing the
        // error when the caller finally checks status().
        if (status_.ok()) status_ = children_[i]->status();
        continue;
      }
      if (current_ < 0 ||
          children_[i]->key().compare(children_[current_]->key()) < 0) {
        current_ = static_cast<int>(i);
      }
    }
    if (!status_.ok()) current_ = -1;
  }

  std::vector<std::unique_ptr<Iterator>> children_;
  int current_ = -1;
  Status status_;
};

class EmptyIterator : public Iterator {
 public:
  bool Valid() const override { return false; }
  void SeekToFirst() override {}
  void Seek(const Slice&) override {}
  void Next() override {}
  Slice key() const override { return Slice(); }
  Slice value() const override { return Slice(); }
  Status status() const override { return Status::OK(); }
};

}  // namespace

std::unique_ptr<Iterator> NewMergingIterator(
    std::vector<std::unique_ptr<Iterator>> children) {
  if (children.empty()) return std::make_unique<EmptyIterator>();
  if (children.size() == 1) return std::move(children[0]);
  return std::make_unique<MergingIterator>(std::move(children));
}

}  // namespace tu::lsm
