#include "lsm/merging_iterator.h"

#include <utility>
#include <vector>

namespace tu::lsm {

namespace {

// K-way merge over the per-table/memtable children as a binary min-heap of
// cached keys. A full-span query over a time-partitioned tree can carry a
// hundred-plus children, and the previous linear FindSmallest rescanned all
// of them — two virtual calls plus a compare each — on every advance, which
// dominated the warm drain. The heap touches O(log n) entries per advance,
// and because partitions hold disjoint time ranges the advanced child
// usually stays smallest, so the sift-down ends after one compare.
//
// A child's cached key Slice points into storage owned by that child
// (memtable node, pinned block) and stays valid until the child advances;
// only the heap root's child is ever advanced, and its entry is refreshed
// immediately after.
class MergingIterator : public Iterator {
 public:
  explicit MergingIterator(std::vector<std::unique_ptr<Iterator>> children)
      : children_(std::move(children)) {}

  bool Valid() const override { return !heap_.empty(); }

  void SeekToFirst() override {
    for (auto& child : children_) child->SeekToFirst();
    Rebuild();
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) child->Seek(target);
    Rebuild();
  }

  void Next() override {
    heap_[0].it->Next();
    Reposition();
  }

  Slice key() const override { return heap_[0].key; }
  Slice value() const override { return heap_[0].it->value(); }

  /// Delegates the batched decode to the winning child (hitting its leaf
  /// override), then re-establishes the merge invariant.
  Status NextBatch(int member_slot, query::SampleBatch* batch) override {
    if (heap_.empty()) {
      batch->clear();
      return status_;
    }
    TU_RETURN_IF_ERROR(heap_[0].it->NextBatch(member_slot, batch));
    Reposition();
    return status_;
  }

  Status status() const override { return status_; }

 private:
  struct Entry {
    Slice key;       ///< cached child->key(); valid until the child advances
    uint32_t index;  ///< child ordinal — ties resolve to the earliest child
    Iterator* it;
  };

  static bool Before(const Entry& a, const Entry& b) {
    const int c = a.key.compare(b.key);
    return c != 0 ? c < 0 : a.index < b.index;
  }

  /// Latch the first child error so the merge fails fast instead of
  /// yielding a silently incomplete stream and only surfacing the error
  /// when the caller finally checks status(). Called whenever a child is
  /// observed invalid; an errored merge goes wholly invalid.
  void Retire(Iterator* it) {
    if (status_.ok()) status_ = it->status();
  }

  void Rebuild() {
    heap_.clear();
    for (size_t i = 0; i < children_.size(); ++i) {
      Iterator* it = children_[i].get();
      if (it->Valid()) {
        heap_.push_back(Entry{it->key(), static_cast<uint32_t>(i), it});
      } else {
        Retire(it);
      }
    }
    if (!status_.ok()) {
      heap_.clear();
      return;
    }
    for (size_t i = heap_.size() / 2; i-- > 0;) SiftDown(i);
  }

  /// Re-establishes the heap invariant after the root's child advanced.
  void Reposition() {
    Iterator* it = heap_[0].it;
    if (it->Valid()) {
      heap_[0].key = it->key();
      SiftDown(0);
      return;
    }
    Retire(it);
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!status_.ok()) {
      heap_.clear();
      return;
    }
    if (!heap_.empty()) SiftDown(0);
  }

  void SiftDown(size_t i) {
    const size_t n = heap_.size();
    while (true) {
      size_t smallest = i;
      const size_t l = 2 * i + 1;
      const size_t r = l + 1;
      if (l < n && Before(heap_[l], heap_[smallest])) smallest = l;
      if (r < n && Before(heap_[r], heap_[smallest])) smallest = r;
      if (smallest == i) return;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<std::unique_ptr<Iterator>> children_;
  std::vector<Entry> heap_;
  Status status_;
};

class EmptyIterator : public Iterator {
 public:
  bool Valid() const override { return false; }
  void SeekToFirst() override {}
  void Seek(const Slice&) override {}
  void Next() override {}
  Slice key() const override { return Slice(); }
  Slice value() const override { return Slice(); }
  Status status() const override { return Status::OK(); }
};

}  // namespace

std::unique_ptr<Iterator> NewMergingIterator(
    std::vector<std::unique_ptr<Iterator>> children) {
  if (children.empty()) return std::make_unique<EmptyIterator>();
  if (children.size() == 1) return std::move(children[0]);
  return std::make_unique<MergingIterator>(std::move(children));
}

}  // namespace tu::lsm
