#include "lsm/time_lsm.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <unordered_set>

#include "cloud/fault_injector.h"
#include "lsm/chunk_merge.h"
#include "lsm/key_format.h"
#include "lsm/merging_iterator.h"
#include "query/aggregate.h"
#include "util/crc32c.h"
#include "util/memory_tracker.h"

namespace tu::lsm {

namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Keeps memtables and table readers alive for the iterator's lifetime, so
/// a concurrent flush/compaction retiring them cannot dangle the query.
class PinnedIterator : public Iterator {
 public:
  PinnedIterator(std::unique_ptr<Iterator> inner,
                 std::vector<std::shared_ptr<MemTable>> mem_pins,
                 std::vector<std::shared_ptr<TableReader>> reader_pins)
      : inner_(std::move(inner)),
        mem_pins_(std::move(mem_pins)),
        reader_pins_(std::move(reader_pins)) {}

  bool Valid() const override { return inner_->Valid(); }
  void SeekToFirst() override { inner_->SeekToFirst(); }
  void Seek(const Slice& target) override { inner_->Seek(target); }
  void Next() override { inner_->Next(); }
  Slice key() const override { return inner_->key(); }
  Slice value() const override { return inner_->value(); }
  Status status() const override { return inner_->status(); }

 private:
  std::unique_ptr<Iterator> inner_;
  std::vector<std::shared_ptr<MemTable>> mem_pins_;
  std::vector<std::shared_ptr<TableReader>> reader_pins_;
};

}  // namespace

TimePartitionedLsm::TimePartitionedLsm(cloud::TieredEnv* env, std::string name,
                                       TimeLsmOptions options,
                                       BlockCache* block_cache)
    : env_(env),
      name_(std::move(name)),
      options_(options),
      block_cache_(block_cache),
      l0_len_ms_(options.l0_partition_ms),
      l2_len_ms_(options.l2_partition_ms) {
  if (options_.metrics != nullptr) {
    h_memflush_us_ = options_.metrics->histogram("lsm.memflush_us");
    h_compact_l0_l1_us_ = options_.metrics->histogram("lsm.compact_l0_l1_us");
    h_compact_l1_l2_us_ = options_.metrics->histogram("lsm.compact_l1_l2_us");
    h_patch_merge_us_ = options_.metrics->histogram("lsm.patch_merge_us");
    h_table_build_us_ = options_.metrics->histogram("lsm.table_build_us");
    trace_ = &options_.metrics->trace();
  }
}

TimePartitionedLsm::~TimePartitionedLsm() {
  // Cancel in-flight retry backoffs before waiting: a flush worker stuck
  // in RunWithRetry against a dead tier would otherwise hold WaitIdle for
  // the full backoff budget.
  shutting_down_.store(true, std::memory_order_release);
  if (flush_pool_) flush_pool_->WaitIdle();
  if (mem_) {
    MemoryTracker::Global().Sub(
        MemCategory::kMemtable,
        static_cast<int64_t>(mem_->ApproximateMemoryUsage()));
  }
}

namespace {

/// Creates a memtable and registers its initial arena footprint, so the
/// full-usage Sub at flush time balances exactly.
std::shared_ptr<MemTable> NewTrackedMemTable() {
  auto mem = std::make_shared<MemTable>();
  MemoryTracker::Global().Add(
      MemCategory::kMemtable,
      static_cast<int64_t>(mem->ApproximateMemoryUsage()));
  return mem;
}

}  // namespace

Status TimePartitionedLsm::Open() {
  TU_RETURN_IF_ERROR(env_->fast().CreateDir(name_));
  mem_ = NewTrackedMemTable();
  if (options_.background_flush) {
    flush_pool_ = std::make_unique<ThreadPool>(1);
  }
  if (options_.persist_manifest) {
    TU_RETURN_IF_ERROR(LoadManifest());
    TU_RETURN_IF_ERROR(RecoverStorageState());
  }
  return Status::OK();
}

Status TimePartitionedLsm::RecoverStorageState() {
  std::lock_guard<std::mutex> lock(mu_);

  // Pass 1: verify every manifest-referenced table is present with the
  // recorded size; quarantine the rest. A quarantined L2 base leaves its
  // patches behind as standalone entries (they still carry valid data).
  //
  // Quarantine needs definitive evidence: a missing object (NotFound) or a
  // wrong size. A transient/tier-down probe error (Busy, IOError,
  // breaker-open Unavailable) proves nothing about the table — dropping
  // live L2 data because the store reopened during an outage would turn a
  // temporary failure into permanent loss, so such tables are kept
  // optimistically.
  enum class Verify { kOk, kBad, kUnknown };
  bool changed = false;
  auto verify = [&](const TableHandle& t, std::string* reason) -> Verify {
    uint64_t size = 0;
    Status s = t.on_slow
                   ? env_->slow().ObjectSize(SlowKey(t.meta.table_id), &size)
                   : env_->fast().GetFileSize(FastName(t.meta.table_id), &size);
    if (s.IsNotFound()) {
      *reason = s.ToString();
      return Verify::kBad;
    }
    if (!s.ok()) {
      std::fprintf(stderr,
                   "[time_lsm] cannot verify table %llu at open (%s); "
                   "keeping it: %s\n",
                   static_cast<unsigned long long>(t.meta.table_id),
                   t.on_slow ? "slow tier" : "fast tier",
                   s.ToString().c_str());
      return Verify::kUnknown;
    }
    if (size != t.meta.file_size) {
      *reason = "size " + std::to_string(size) + " != manifest " +
                std::to_string(t.meta.file_size);
      return Verify::kBad;
    }
    return Verify::kOk;
  };
  auto quarantine = [&](const TableHandle& t, std::string reason) {
    std::fprintf(stderr,
                 "[time_lsm] quarantining table %llu (%s tier): %s\n",
                 static_cast<unsigned long long>(t.meta.table_id),
                 t.on_slow ? "slow" : "fast", reason.c_str());
    quarantined_.push_back(QuarantinedTable{
        t.meta.table_id, t.on_slow, std::move(reason), t.meta.min_series_id,
        t.meta.max_series_id, t.meta.min_ts,
        DataBoundLocked(t.meta.table_id),
        /*is_rollup=*/t.meta.rollup_granularity_ms != 0});
    stats_.tables_quarantined.fetch_add(1, std::memory_order_relaxed);
    changed = true;
  };

  auto scrub_level = [&](std::vector<Partition>* level) {
    for (Partition& p : *level) {
      for (auto it = p.tables.begin(); it != p.tables.end();) {
        std::string reason;
        if (verify(*it, &reason) == Verify::kBad) {
          quarantine(*it, std::move(reason));
          it = p.tables.erase(it);
        } else {
          ++it;
        }
      }
    }
    std::erase_if(*level, [](const Partition& p) { return p.tables.empty(); });
  };
  scrub_level(&l0_);
  scrub_level(&l1_);

  for (L2Partition& p : l2_) {
    std::vector<L2Entry> kept;
    for (L2Entry& e : p.entries) {
      std::vector<TableHandle> patches = std::move(e.patches);
      e.patches.clear();
      std::string reason;
      const bool base_ok = verify(e.base, &reason) != Verify::kBad;
      if (!base_ok) quarantine(e.base, std::move(reason));
      for (TableHandle& t : patches) {
        std::string patch_reason;
        if (verify(t, &patch_reason) == Verify::kBad) {
          quarantine(t, std::move(patch_reason));
        } else if (base_ok) {
          e.patches.push_back(std::move(t));
        } else {
          // Base lost: promote the surviving patch to its own entry.
          L2Entry promoted;
          promoted.base = std::move(t);
          kept.push_back(std::move(promoted));
        }
      }
      if (base_ok) kept.push_back(std::move(e));
    }
    std::sort(kept.begin(), kept.end(), [](const L2Entry& a, const L2Entry& b) {
      return a.base.meta.min_series_id < b.base.meta.min_series_id;
    });
    p.entries = std::move(kept);
    // A lost rollup table costs no data — the raw path still has every
    // sample — so the partition just degrades aggregate reads to raw.
    for (auto it = p.rollups.begin(); it != p.rollups.end();) {
      std::string reason;
      if (verify(*it, &reason) == Verify::kBad) {
        quarantine(*it, std::move(reason));
        it = p.rollups.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::erase_if(l2_, [](const L2Partition& p) { return p.entries.empty(); });

  // Pass 2: sweep files neither tier should hold — `.tmp`/`.upload`
  // leftovers of interrupted uploads and table files the (authoritative)
  // manifest no longer references. The live sets are per tier: a deferred
  // L2 table is live on the FAST tier only, so a crash between a drain's
  // manifest flip and its fast-file unlink leaves a fast orphan this sweep
  // removes (and vice versa for a crash between upload and flip).
  std::unordered_set<uint64_t> live_fast;
  std::unordered_set<uint64_t> live_slow;
  auto mark_live = [&](const TableHandle& t) {
    (t.on_slow ? live_slow : live_fast).insert(t.meta.table_id);
  };
  for (const Partition& p : l0_) {
    for (const TableHandle& t : p.tables) mark_live(t);
  }
  for (const Partition& p : l1_) {
    for (const TableHandle& t : p.tables) mark_live(t);
  }
  for (const L2Partition& p : l2_) {
    for (const L2Entry& e : p.entries) {
      mark_live(e.base);
      for (const TableHandle& t : e.patches) mark_live(t);
    }
    for (const TableHandle& t : p.rollups) mark_live(t);
  }
  auto sweepable = [](const std::unordered_set<uint64_t>& live,
                      const std::string& name) {
    if (name.ends_with(".tmp") || name.ends_with(".upload")) return true;
    uint64_t id = 0;
    return ParseTableFileName(name, &id) && !live.contains(id);
  };

  std::vector<std::string> names;
  Status s = env_->fast().ListDir(name_, &names);
  if (s.ok()) {
    for (const std::string& name : names) {
      if (name == "MANIFEST" || !sweepable(live_fast, name)) continue;
      if (env_->fast().DeleteFile(name_ + "/" + name).ok()) {
        stats_.orphans_swept.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  std::vector<std::string> keys;
  s = env_->slow().ListObjects(name_ + "/", &keys);
  if (s.ok()) {
    for (const std::string& key : keys) {
      const std::string name = key.substr(name_.size() + 1);
      if (!sweepable(live_slow, name)) continue;
      if (env_->slow().DeleteObject(key).ok()) {
        stats_.orphans_swept.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  if (changed) return SaveManifest();
  return Status::OK();
}

Status TimePartitionedLsm::SaveManifest() {
  // Every manifest mutation passes through here (under mu_), so this is
  // the one place the admission gauge needs refreshing.
  UpdateFastResidentGaugeLocked();
  if (!options_.persist_manifest) return Status::OK();
  std::string out;
  PutVarint64(&out, next_table_id_);
  PutVarint64(&out, next_seq_);
  PutFixed64(&out, static_cast<uint64_t>(l0_len_ms_));
  PutFixed64(&out, static_cast<uint64_t>(l2_len_ms_));

  auto encode_level = [&out](const std::vector<Partition>& level) {
    PutVarint32(&out, static_cast<uint32_t>(level.size()));
    for (const Partition& p : level) {
      PutFixed64(&out, static_cast<uint64_t>(p.start));
      PutFixed64(&out, static_cast<uint64_t>(p.end));
      PutVarint32(&out, static_cast<uint32_t>(p.tables.size()));
      for (const TableHandle& t : p.tables) t.meta.EncodeTo(&out);
    }
  };
  encode_level(l0_);
  encode_level(l1_);
  // Each L2 table carries a flags varint (bit 0: on_slow). A deferred
  // table — parked on the fast tier during an outage — thus survives a
  // crash/reopen still marked deferred, which is the queue's persistence.
  auto encode_l2_table = [&out](const TableHandle& t) {
    t.meta.EncodeTo(&out);
    PutVarint32(&out, t.on_slow ? 1 : 0);
  };
  PutVarint32(&out, static_cast<uint32_t>(l2_.size()));
  for (const L2Partition& p : l2_) {
    PutFixed64(&out, static_cast<uint64_t>(p.start));
    PutFixed64(&out, static_cast<uint64_t>(p.end));
    PutVarint32(&out, static_cast<uint32_t>(p.entries.size()));
    for (const L2Entry& e : p.entries) {
      encode_l2_table(e.base);
      PutVarint32(&out, static_cast<uint32_t>(e.patches.size()));
      for (const TableHandle& t : e.patches) encode_l2_table(t);
    }
    // Rollup tables and their pending dirty spans persist with the
    // partition, so a reopen neither loses materialized aggregates nor
    // forgets which buckets a pre-crash rewrite invalidated.
    PutVarint32(&out, static_cast<uint32_t>(p.rollups.size()));
    for (const TableHandle& t : p.rollups) encode_l2_table(t);
    PutVarint32(&out, static_cast<uint32_t>(p.rollup_dirty.size()));
    for (const auto& [lo, hi] : p.rollup_dirty) {
      PutFixed64(&out, static_cast<uint64_t>(lo));
      PutFixed64(&out, static_cast<uint64_t>(hi));
    }
  }
  // The envelope (length + checksum) lets a reopen tell a torn manifest
  // write apart from silent at-rest corruption.
  return env_->fast().WriteStringToFile(name_ + "/MANIFEST",
                                        WrapManifest(out));
}

Status TimePartitionedLsm::LoadManifest() {
  std::string contents;
  Status s = env_->fast().ReadFileToString(name_ + "/MANIFEST", &contents);
  if (s.IsNotFound()) return Status::OK();
  TU_RETURN_IF_ERROR(s);
  Slice in;
  TU_RETURN_IF_ERROR(UnwrapManifest(contents, &in));
  auto corrupt = [] { return Status::Corruption("bad lsm manifest"); };
  uint64_t next_seq = 0;
  if (!GetVarint64(&in, &next_table_id_) || !GetVarint64(&in, &next_seq) ||
      in.size() < 16) {
    return corrupt();
  }
  next_seq_ = next_seq;
  l0_len_ms_ = static_cast<int64_t>(DecodeFixed64(in.data()));
  l2_len_ms_ = static_cast<int64_t>(DecodeFixed64(in.data() + 8));
  in.remove_prefix(16);

  auto decode_table = [&](TableHandle* t, bool on_slow) -> bool {
    if (!t->meta.DecodeFrom(&in)) return false;
    t->on_slow = on_slow;
    return true;
  };
  auto decode_l2_table = [&](TableHandle* t) -> bool {
    uint32_t flags = 0;
    if (!t->meta.DecodeFrom(&in) || !GetVarint32(&in, &flags)) return false;
    t->on_slow = (flags & 1) != 0;
    return true;
  };
  auto decode_level = [&](std::vector<Partition>* level) -> bool {
    uint32_t n = 0;
    if (!GetVarint32(&in, &n)) return false;
    level->clear();
    for (uint32_t i = 0; i < n; ++i) {
      Partition p;
      if (in.size() < 16) return false;
      p.start = static_cast<int64_t>(DecodeFixed64(in.data()));
      p.end = static_cast<int64_t>(DecodeFixed64(in.data() + 8));
      in.remove_prefix(16);
      uint32_t tables = 0;
      if (!GetVarint32(&in, &tables)) return false;
      for (uint32_t j = 0; j < tables; ++j) {
        TableHandle t;
        if (!decode_table(&t, false)) return false;
        p.tables.push_back(std::move(t));
      }
      level->push_back(std::move(p));
    }
    return true;
  };
  if (!decode_level(&l0_) || !decode_level(&l1_)) return corrupt();
  uint32_t n2 = 0;
  if (!GetVarint32(&in, &n2)) return corrupt();
  l2_.clear();
  for (uint32_t i = 0; i < n2; ++i) {
    L2Partition p;
    if (in.size() < 16) return corrupt();
    p.start = static_cast<int64_t>(DecodeFixed64(in.data()));
    p.end = static_cast<int64_t>(DecodeFixed64(in.data() + 8));
    in.remove_prefix(16);
    uint32_t entries = 0;
    if (!GetVarint32(&in, &entries)) return corrupt();
    for (uint32_t j = 0; j < entries; ++j) {
      L2Entry e;
      if (!decode_l2_table(&e.base)) return corrupt();
      uint32_t patches = 0;
      if (!GetVarint32(&in, &patches)) return corrupt();
      for (uint32_t k = 0; k < patches; ++k) {
        TableHandle t;
        if (!decode_l2_table(&t)) return corrupt();
        e.patches.push_back(std::move(t));
      }
      p.entries.push_back(std::move(e));
    }
    uint32_t rollups = 0;
    if (!GetVarint32(&in, &rollups)) return corrupt();
    for (uint32_t j = 0; j < rollups; ++j) {
      TableHandle t;
      if (!decode_l2_table(&t)) return corrupt();
      p.rollups.push_back(std::move(t));
    }
    uint32_t dirty = 0;
    if (!GetVarint32(&in, &dirty)) return corrupt();
    for (uint32_t j = 0; j < dirty; ++j) {
      if (in.size() < 16) return corrupt();
      const int64_t lo = static_cast<int64_t>(DecodeFixed64(in.data()));
      const int64_t hi = static_cast<int64_t>(DecodeFixed64(in.data() + 8));
      in.remove_prefix(16);
      p.rollup_dirty.emplace_back(lo, hi);
    }
    l2_.push_back(std::move(p));
  }
  UpdateFastResidentGaugeLocked();
  return Status::OK();
}

std::string TimePartitionedLsm::FastName(uint64_t table_id) const {
  return name_ + "/" + TableFileName(table_id);
}

std::string TimePartitionedLsm::SlowKey(uint64_t table_id) const {
  return name_ + "/" + TableFileName(table_id);
}

Status TimePartitionedLsm::Put(const Slice& user_key, const Slice& value) {
  std::shared_ptr<MemTable> imm;
  {
    std::lock_guard<std::mutex> lock(mem_mu_);
    const size_t before = mem_->ApproximateMemoryUsage();
    mem_->Add(next_seq_++, user_key, value);
    MemoryTracker::Global().Add(
        MemCategory::kMemtable,
        static_cast<int64_t>(mem_->ApproximateMemoryUsage() - before));
    if (mem_->ApproximateMemoryUsage() < options_.memtable_bytes) {
      return Status::OK();
    }
    // Memtable full: rotate. With background flushing the immutable joins
    // the queue (§3.3 "Immutable MemTable queue to allow multiple flushes")
    // and a worker drains it without blocking this writer.
    imm = mem_;
    mem_ = NewTrackedMemTable();
    immutables_.push_back(imm);
  }
  if (flush_pool_) {
    flush_pool_->Schedule([this] {
      std::shared_ptr<MemTable> target;
      {
        std::lock_guard<std::mutex> lock(mem_mu_);
        if (immutables_.empty()) return;
        target = immutables_.front();
      }
      Status fs, ms;
      {
        std::lock_guard<std::mutex> manifest_lock(mu_);
        fs = FlushMemTable(target.get());
        if (fs.ok()) ms = MaybeMaintain();
      }
      // Background failures don't reach a caller; latch them (with the
      // stage that failed) so the DB's error handler and health report
      // see them.
      if (!fs.ok()) RecordBackgroundError(BgWorkKind::kFlush, fs);
      if (!ms.ok()) RecordBackgroundError(BgWorkKind::kCompaction, ms);
      if (fs.ok()) {
        // A failed flush RETAINS its memtable at the queue head so the
        // resume probe (RetryBackgroundWork) can replay it from memory
        // once the environment heals — popping it would drop acked data.
        std::lock_guard<std::mutex> lock(mem_mu_);
        if (!immutables_.empty() && immutables_.front() == target) {
          immutables_.pop_front();
        }
      }
    });
    return Status::OK();
  }
  Status s;
  {
    std::lock_guard<std::mutex> manifest_lock(mu_);
    s = FlushMemTable(imm.get());
    if (s.ok()) s = MaybeMaintain();
  }
  {
    // Same retained-input rule as the background worker: only a successful
    // flush removes the rotated memtable from the queue.
    std::lock_guard<std::mutex> lock(mem_mu_);
    if (s.ok() && !immutables_.empty() && immutables_.back() == imm) {
      immutables_.pop_back();
    }
  }
  return s;
}

Status TimePartitionedLsm::FlushAll() {
  if (flush_pool_) flush_pool_->WaitIdle();
  std::deque<std::shared_ptr<MemTable>> drain;
  {
    std::lock_guard<std::mutex> lock(mem_mu_);
    drain.swap(immutables_);
    if (!mem_->empty()) {
      drain.push_back(mem_);
      mem_ = NewTrackedMemTable();
    }
  }
  Status s;
  {
    std::lock_guard<std::mutex> manifest_lock(mu_);
    while (!drain.empty()) {
      s = FlushMemTable(drain.front().get());
      if (!s.ok()) break;
      drain.pop_front();
    }
  }
  if (!drain.empty()) {
    // Re-queue the unflushed tail so a retry after the environment heals
    // still owns the data (rotations that raced in stay behind it).
    std::lock_guard<std::mutex> lock(mem_mu_);
    immutables_.insert(immutables_.begin(), drain.begin(), drain.end());
    return s;
  }
  std::lock_guard<std::mutex> manifest_lock(mu_);
  return MaybeMaintain();
}

Status TimePartitionedLsm::RetryBackgroundWork() {
  if (flush_pool_) flush_pool_->WaitIdle();
  // Replay retained flush inputs oldest-first. Re-flushing a memtable whose
  // earlier attempt partially installed tables is safe: entries keep the
  // internal-key seq stamped at Put time, so duplicates dedup to identical
  // values at merge time.
  while (true) {
    std::shared_ptr<MemTable> target;
    {
      std::lock_guard<std::mutex> lock(mem_mu_);
      if (immutables_.empty()) break;
      target = immutables_.front();
    }
    {
      std::lock_guard<std::mutex> manifest_lock(mu_);
      TU_RETURN_IF_ERROR(FlushMemTable(target.get()));
    }
    std::lock_guard<std::mutex> lock(mem_mu_);
    if (!immutables_.empty() && immutables_.front() == target) {
      immutables_.pop_front();
    }
  }
  std::lock_guard<std::mutex> manifest_lock(mu_);
  return MaybeMaintain();
}

Status TimePartitionedLsm::WriteTable(
    const std::vector<std::pair<std::string, std::string>>& entries,
    bool to_slow, TableHandle* out) {
  const uint64_t table_id = next_table_id_++;
  const uint64_t build_start_us = NowUs();
  // Fast-tier builds land under a .tmp name and rename in only on success
  // (discard-and-rebuild): a failed Append or a poisoned fsync leaves
  // nothing at the final name, so the retried build starts from scratch
  // instead of trusting pages the kernel may have dropped. The open-time
  // sweep reclaims .tmp leftovers after a crash.
  const std::string fast_tmp = FastName(table_id) + ".tmp";
  std::unique_ptr<TableSink> sink;
  if (to_slow) {
    sink = std::make_unique<BufferTableSink>();
  } else {
    std::unique_ptr<cloud::WritableFile> file;
    Status open = env_->fast().NewWritableFile(fast_tmp, &file);
    if (!open.ok()) return open;
    sink = std::make_unique<FileTableSink>(std::move(file));
  }
  TableBuilder builder(options_.table_options, sink.get());
  Status bs;
  for (const auto& [key, value] : entries) {
    bs = builder.Add(key, value);
    if (!bs.ok()) break;
  }
  if (bs.ok()) bs = builder.Finish(&out->meta);
  if (bs.ok()) bs = sink->Close();
  if (!bs.ok()) {
    if (!to_slow) (void)env_->fast().DeleteFile(fast_tmp);
    return bs;
  }
  out->meta.table_id = table_id;
  if (h_table_build_us_ != nullptr) {
    h_table_build_us_->Observe(NowUs() - build_start_us);
  }
  if (to_slow) {
    auto* buf = static_cast<BufferTableSink*>(sink.get());
    Status up =
        UploadBufferToSlow(table_id, buf->buffer(), out->meta.object_crc32c);
    if (up.ok()) {
      stats_.slow_bytes_written.fetch_add(buf->buffer().size(),
                                          std::memory_order_relaxed);
      out->on_slow = true;
      if (trace_ != nullptr) {
        trace_->Record("l2.upload",
                       "table=" + std::to_string(table_id) +
                           " bytes=" + std::to_string(buf->buffer().size()));
      }
    } else if (up.IsUnavailable() || up.IsIOError() || up.IsBusy()) {
      // Slow tier unreachable (breaker open / retries exhausted): park the
      // table on the fast tier instead of failing the compaction. The
      // handle installs with on_slow=false, so queries read it
      // transparently and the manifest records the deferral — the drainer
      // uploads and flips it once the tier heals.
      TU_RETURN_IF_ERROR(
          env_->fast().WriteStringToFile(FastName(table_id), buf->buffer()));
      stats_.deferred_tables_created.fetch_add(1, std::memory_order_relaxed);
      stats_.fast_bytes_written.fetch_add(buf->buffer().size(),
                                          std::memory_order_relaxed);
      out->on_slow = false;
      if (trace_ != nullptr) {
        trace_->Record("l2.upload.deferred",
                       "table=" + std::to_string(table_id) +
                           " bytes=" + std::to_string(buf->buffer().size()));
      }
    } else {
      return up;  // Corruption etc.: not an outage, surface it
    }
  } else {
    Status rn = env_->fast().RenameFile(fast_tmp, FastName(table_id));
    if (!rn.ok()) {
      (void)env_->fast().DeleteFile(fast_tmp);
      return rn;
    }
    stats_.fast_bytes_written.fetch_add(out->meta.file_size,
                                        std::memory_order_relaxed);
    out->on_slow = false;
  }
  out->reader.reset();
  return Status::OK();
}

Status TimePartitionedLsm::UploadBufferToSlow(uint64_t table_id,
                                              const Slice& data,
                                              uint32_t expected_crc) {
  // Atomic upload protocol: land the bytes under a .tmp key, verify the
  // object (size, optionally CRC), then commit with a rename. A crash at
  // any point leaves either nothing at the final key or the complete
  // table — never a torn one; .tmp leftovers are swept at open.
  cloud::ObjectStore& slow = env_->slow();
  const std::string key = SlowKey(table_id);
  const std::string tmp = key + ".tmp";
  // A CRC mismatch on the read-back is Corruption, not Busy — but it is
  // still worth retrying here: re-putting the same bytes heals in-flight
  // corruption, and only a persistent mismatch (at-rest rot on our source
  // buffer, or a mangling store) surfaces as Corruption to the caller,
  // where it is treated as permanent rather than parked as deferred.
  cloud::RetryPolicy upload_retry = slow.sim().retry;
  upload_retry.retry_corruption = true;
  cloud::CrashPoint(slow.fault(), "l2.upload.pre_put");
  TU_RETURN_IF_ERROR(cloud::RunWithRetry(
      upload_retry, &slow.counters(), "upload " + tmp,
      [&]() -> Status {
        TU_RETURN_IF_ERROR(slow.PutObject(tmp, data));
        uint64_t uploaded = 0;
        TU_RETURN_IF_ERROR(slow.ObjectSize(tmp, &uploaded));
        if (uploaded != data.size()) {
          return Status::Busy("torn upload: " + std::to_string(uploaded) +
                              " of " + std::to_string(data.size()) +
                              " bytes at " + tmp);
        }
        if (options_.integrity.verify_upload) {
          std::string back;
          TU_RETURN_IF_ERROR(slow.GetObject(tmp, &back));
          const uint32_t want = expected_crc != 0
                                    ? expected_crc
                                    : crc32c::Value(data.data(), data.size());
          if (crc32c::Value(back.data(), back.size()) != want) {
            return Status::Corruption("upload crc mismatch at " + tmp);
          }
        }
        return Status::OK();
      },
      &shutting_down_));
  cloud::CrashPoint(slow.fault(), "l2.upload.pre_commit");
  TU_RETURN_IF_ERROR(cloud::RunWithRetry(
      slow.sim().retry, &slow.counters(), "commit " + key,
      [&] { return slow.RenameObject(tmp, key); }, &shutting_down_));
  cloud::CrashPoint(slow.fault(), "l2.upload.post_commit");
  return Status::OK();
}

Status TimePartitionedLsm::DeleteTable(const TableHandle& handle) {
  // Deletes run only after the manifest stopped referencing the table, so
  // they are idempotent (NotFound is fine) and may fail without harm — a
  // missed delete is an orphan the next open sweeps. The tier comes from
  // the handle itself: a deferred L2 table still lives on the fast tier.
  Status s;
  if (handle.on_slow) {
    cloud::ObjectStore& slow = env_->slow();
    s = cloud::RunWithRetry(
        slow.sim().retry, &slow.counters(), "delete table",
        [&] { return slow.DeleteObject(SlowKey(handle.meta.table_id)); },
        &shutting_down_);
  } else {
    s = env_->fast().DeleteFile(FastName(handle.meta.table_id));
  }
  if (s.IsNotFound()) return Status::OK();
  return s;
}

Status TimePartitionedLsm::FlushMemTable(MemTable* mem) {
  const uint64_t flush_start_us = NowUs();
  // Split the sorted stream by L0 time partition (§3.3: "the key-value
  // pairs are separated into different time partitions according to the
  // timestamps contained in the keys").
  std::map<int64_t, std::vector<std::pair<std::string, std::string>>> buckets;
  auto it = mem->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    const Slice user_key = InternalKeyUserKey(it->key());
    const int64_t ts = ChunkKeyTimestamp(user_key);
    const int64_t part_start = AlignDown(ts, l0_len_ms_);
    buckets[part_start].emplace_back(it->key().ToString(),
                                     it->value().ToString());
  }

  for (auto& [part_start, entries] : buckets) {
    TableHandle handle;
    TU_RETURN_IF_ERROR(WriteTable(entries, /*to_slow=*/false, &handle));
    // Find or create the L0 partition.
    Partition* target = nullptr;
    for (Partition& p : l0_) {
      if (p.start == part_start) {
        target = &p;
        break;
      }
    }
    if (target == nullptr) {
      Partition p;
      p.start = part_start;
      p.end = part_start + l0_len_ms_;
      l0_.push_back(std::move(p));
      std::sort(l0_.begin(), l0_.end(),
                [](const Partition& a, const Partition& b) {
                  return a.start < b.start;
                });
      for (Partition& q : l0_) {
        if (q.start == part_start) {
          target = &q;
          break;
        }
      }
    }
    target->tables.insert(target->tables.begin(), std::move(handle));
  }

  cloud::CrashPoint(env_->fast().fault(), "l0.flush.pre_manifest");
  TU_RETURN_IF_ERROR(SaveManifest());
  // Accounting only after the manifest commit: a failed flush is retried
  // whole from its retained memtable, so booking the memory release or the
  // flush count early would double on the retry.
  MemoryTracker::Global().Sub(
      MemCategory::kMemtable,
      static_cast<int64_t>(mem->ApproximateMemoryUsage()));
  stats_.flushes.fetch_add(1, std::memory_order_relaxed);
  if (h_memflush_us_ != nullptr) {
    h_memflush_us_->Observe(NowUs() - flush_start_us);
  }
  if (trace_ != nullptr) {
    trace_->Record("flush", "partitions=" + std::to_string(buckets.size()));
  }
  // Flush marks (the §3.3 WAL purge hook) only after the flushed tables are
  // durably referenced: a crash before this point keeps the WAL records
  // live, so replay rebuilds what the flush had not yet committed.
  if (options_.on_flush) {
    for (const auto& [part_start, entries] : buckets) {
      for (const auto& [ikey, value] : entries) {
        options_.on_flush(InternalKeyUserKey(ikey), value);
      }
    }
  }
  return Status::OK();
}

Status TimePartitionedLsm::MaybeMaintain() {
  while (static_cast<int>(l0_.size()) > options_.l0_partition_trigger) {
    TU_RETURN_IF_ERROR(CompactOldestL0());
  }
  // Size control runs before the L1->L2 migration: the growth rule needs
  // to observe the accumulated level-1 time span before it is drained.
  if (options_.fast_storage_limit_bytes > 0) {
    TU_RETURN_IF_ERROR(RunDynamicSizeControl());
  }
  TU_RETURN_IF_ERROR(MaybeCompactL1ToL2());
  TU_RETURN_IF_ERROR(MergePatchesIfNeeded());
  return SaveManifest();
}

Status TimePartitionedLsm::OpenReaderOnTier(TableHandle* handle, bool use_slow,
                                            bool fill_cache) {
  std::unique_ptr<TableSource> source;
  if (use_slow) {
    // Rollup summaries are a few hundred bytes per partition: download the
    // whole object in one Get instead of paying 4+ ranged Gets for the
    // footer/filter/index/data walk. Raw tables stay ranged — a query
    // usually touches a fraction of their blocks.
    if (handle->meta.rollup_granularity_ms != 0) {
      TU_RETURN_IF_ERROR(PrefetchedTableSource::Open(
          &env_->slow(), SlowKey(handle->meta.table_id), &source));
    } else {
      TU_RETURN_IF_ERROR(SlowTableSource::Open(
          &env_->slow(), SlowKey(handle->meta.table_id), &source));
    }
  } else {
    TU_RETURN_IF_ERROR(FastTableSource::Open(
        &env_->fast(), FastName(handle->meta.table_id), &source));
  }
  if (handle->meta.file_size != 0 && source->Size() != handle->meta.file_size) {
    return Status::Corruption(
        "table " + std::to_string(handle->meta.table_id) + " size " +
        std::to_string(source->Size()) + " != manifest " +
        std::to_string(handle->meta.file_size));
  }
  if (!use_slow && options_.integrity.verify_fast_open &&
      handle->meta.object_crc32c != 0) {
    std::string all;
    TU_RETURN_IF_ERROR(source->ReadAt(0, source->Size(), &all));
    if (crc32c::Value(all.data(), all.size()) != handle->meta.object_crc32c) {
      return Status::Corruption("table " +
                                std::to_string(handle->meta.table_id) +
                                " whole-file crc mismatch on fast tier");
    }
  }
  TableReaderOptions opts;
  opts.block_cache = fill_cache ? block_cache_ : nullptr;
  opts.cache_id = name_ + ":" + std::to_string(handle->meta.table_id);
  opts.on_slow = use_slow;
  if (options_.integrity.self_healing_reads) {
    opts.corruptions_detected = &stats_.read_corruptions_detected;
    opts.corruptions_healed = &stats_.read_corruptions_healed;
  } else {
    opts.corrupt_read_retries = 0;
  }
  std::unique_ptr<TableReader> reader;
  TU_RETURN_IF_ERROR(TableReader::Open(opts, std::move(source), &reader));
  handle->reader = std::move(reader);
  return Status::OK();
}

Status TimePartitionedLsm::OpenReader(TableHandle* handle, bool fill_cache) {
  if (handle->reader) return Status::OK();
  if (handle->quarantined) {
    return Status::Corruption("table " +
                              std::to_string(handle->meta.table_id) +
                              " quarantined");
  }
  Status s = OpenReaderOnTier(handle, handle->on_slow, fill_cache);
  if (!s.IsCorruption() || !options_.integrity.self_healing_reads) return s;

  // The handle's tier holds rotten bytes. The other tier may still hold a
  // healthy duplicate — a deferred upload's fast-tier copy not yet
  // unlinked, or an object committed just before a crash — so try it
  // before giving up on the table.
  Status alt = OpenReaderOnTier(handle, !handle->on_slow, fill_cache);
  if (alt.ok()) {
    stats_.tier_fallback_opens.fetch_add(1, std::memory_order_relaxed);
    if (trace_ != nullptr) {
      trace_->Record("integrity.tier_fallback",
                     "table=" + std::to_string(handle->meta.table_id) +
                         " tier=" + (handle->on_slow ? "slow" : "fast"));
    }
    return Status::OK();
  }
  // Quarantine needs definitive evidence about the other copy (absent or
  // corrupt too). A transient probe failure (tier down, breaker open)
  // proves nothing — leave the handle alone so a later read retries.
  if (alt.IsCorruption() || alt.IsNotFound()) {
    handle->quarantined = true;
    stats_.runtime_quarantines.fetch_add(1, std::memory_order_relaxed);
    if (trace_ != nullptr) {
      trace_->Record("integrity.quarantine",
                     "table=" + std::to_string(handle->meta.table_id) + " " +
                         s.ToString());
    }
  }
  return s;
}

Status TimePartitionedLsm::MergePartitionTables(
    std::vector<TableHandle*> inputs, std::vector<int64_t> boundaries,
    bool to_slow, std::vector<MergeSegment>* outputs,
    RollupBuild* rollup_build) {
  outputs->clear();
  const std::vector<int64_t>& grans = options_.rollup_granularities_ms;
  const bool build_rollups = rollup_build != nullptr && !grans.empty();
  const bool skip_raw = rollup_build != nullptr && rollup_build->skip_raw;
  // Per-granularity rollup entries, accumulated in series-ID order (the
  // merge stream is ID-sorted and each series contributes one chunk), so
  // they feed the table builder pre-sorted.
  std::vector<std::vector<std::pair<std::string, std::string>>> rollup_entries(
      build_rollups ? grans.size() : 0);
  RollupOutput rollup_out;
  if (build_rollups) rollup_out.granularities_ms = grans;

  std::vector<std::unique_ptr<Iterator>> children;
  children.reserve(inputs.size());
  for (TableHandle* h : inputs) {
    TU_RETURN_IF_ERROR(OpenReader(h, /*fill_cache=*/false));
    children.push_back(h->reader->NewIterator());
  }
  auto merged = NewMergingIterator(std::move(children));
  merged->SeekToFirst();

  // Per-interval pending entries, keyed by the interval's start boundary
  // (MergeChunks can extend `boundaries` at either end, so indices are not
  // stable but start timestamps are). Flushed to tables when large enough,
  // but only at series boundaries so output tables keep disjoint ID ranges
  // (Fig. 11 patch-merge splitting relies on this).
  struct PendingOutput {
    std::vector<std::pair<std::string, std::string>> entries;
    size_t bytes = 0;
  };
  std::map<int64_t, PendingOutput> pending;
  std::map<int64_t, std::vector<TableHandle>> tables_by_segment;

  auto flush_segment = [&](int64_t seg_start) -> Status {
    PendingOutput& p = pending[seg_start];
    if (p.entries.empty()) return Status::OK();
    TableHandle handle;
    TU_RETURN_IF_ERROR(WriteTable(p.entries, to_slow, &handle));
    tables_by_segment[seg_start].push_back(std::move(handle));
    p.entries.clear();
    p.bytes = 0;
    return Status::OK();
  };

  // Group the sorted stream by series/group ID; merge each series once.
  std::vector<std::string> value_copies;
  std::vector<ChunkInput> chunk_inputs;
  uint64_t current_id = 0;
  bool have_id = false;

  auto emit_series = [&]() -> Status {
    if (chunk_inputs.empty()) return Status::OK();
    std::vector<MergedChunk> merged_chunks;
    TU_RETURN_IF_ERROR(MergeChunks(chunk_inputs, &boundaries,
                                   options_.max_samples_per_merged_chunk,
                                   &merged_chunks,
                                   build_rollups ? &rollup_out : nullptr));
    if (!skip_raw) {
      for (MergedChunk& chunk : merged_chunks) {
        // The merge extended `boundaries` to cover every row, so the
        // chunk's interval is always real — out-of-range rows are never
        // clamped into an edge partition they do not belong to.
        const int interval = PartitionIndexOf(boundaries, chunk.start_ts);
        PendingOutput& p = pending[boundaries[interval]];
        p.bytes += chunk.value.size() + kInternalKeySize;
        // Stamp the output with the max seq of its winning inputs — NOT a
        // fresh next_seq_. A fresh stamp would outrank any rewrite chunk
        // that was flushed after these inputs but excluded from this merge,
        // silently reviving overwritten values (last-write-wins).
        p.entries.emplace_back(
            MakeInternalKey(MakeChunkKey(current_id, chunk.start_ts),
                            chunk.max_seq),
            std::move(chunk.value));
      }
    }
    if (build_rollups) {
      // Keep only buckets fully inside the window being materialized:
      // buckets that straddle the window edge (or belong to extension
      // segments) would summarize rows the target partition doesn't hold.
      for (size_t gi = 0; gi < grans.size(); ++gi) {
        const int64_t g = grans[gi];
        std::vector<compress::RollupBucket> trimmed;
        for (const compress::RollupBucket& b : rollup_out.buckets[gi]) {
          if (b.start >= rollup_build->w_start &&
              b.start + g <= rollup_build->w_end) {
            trimmed.push_back(b);
          }
        }
        if (trimmed.empty()) continue;
        std::string payload;
        compress::EncodeRollupChunk(rollup_out.max_seq, g, trimmed, &payload);
        rollup_entries[gi].emplace_back(
            MakeInternalKey(MakeChunkKey(current_id, trimmed.front().start),
                            rollup_out.max_seq),
            MakeChunkValue(ChunkType::kRollup, payload));
      }
    }
    chunk_inputs.clear();
    value_copies.clear();
    // Series boundary: safe point to split oversized outputs.
    for (auto& [seg_start, p] : pending) {
      if (p.bytes >= options_.max_output_table_bytes) {
        TU_RETURN_IF_ERROR(flush_segment(seg_start));
      }
    }
    return Status::OK();
  };

  for (; merged->Valid(); merged->Next()) {
    const Slice user_key = InternalKeyUserKey(merged->key());
    const uint64_t id = ChunkKeyId(user_key);
    if (have_id && id != current_id) {
      TU_RETURN_IF_ERROR(emit_series());
    }
    current_id = id;
    have_id = true;
    value_copies.emplace_back(merged->value().ToString());
    chunk_inputs.push_back(
        ChunkInput{InternalKeySeq(merged->key()), Slice(value_copies.back())});
  }
  TU_RETURN_IF_ERROR(merged->status());
  TU_RETURN_IF_ERROR(emit_series());
  for (auto& [seg_start, p] : pending) {
    (void)p;
    TU_RETURN_IF_ERROR(flush_segment(seg_start));
  }
  if (build_rollups) {
    for (size_t gi = 0; gi < grans.size(); ++gi) {
      if (rollup_entries[gi].empty()) continue;
      TableHandle handle;
      TU_RETURN_IF_ERROR(WriteTable(rollup_entries[gi], to_slow, &handle));
      handle.meta.rollup_granularity_ms = grans[gi];
      rollup_build->tables.push_back(std::move(handle));
      stats_.rollup_tables_built.fetch_add(1, std::memory_order_relaxed);
    }
  }
  for (auto& [seg_start, tables] : tables_by_segment) {
    if (tables.empty()) continue;
    const auto it =
        std::upper_bound(boundaries.begin(), boundaries.end(), seg_start);
    MergeSegment seg;
    seg.start = seg_start;
    seg.end = *it;
    seg.tables = std::move(tables);
    outputs->push_back(std::move(seg));
  }
  return Status::OK();
}

Status TimePartitionedLsm::CompactOldestL0() {
  const uint64_t start_us = NowUs();
  Partition victim = std::move(l0_.front());
  l0_.erase(l0_.begin());

  // Overlapping L1 partitions join the merge (ordinary for in-order data;
  // this is also the §3.3 out-of-order L0 partition path).
  std::vector<Partition> l1_inputs;
  for (auto it = l1_.begin(); it != l1_.end();) {
    if (it->start < victim.end && it->end > victim.start) {
      l1_inputs.push_back(std::move(*it));
      it = l1_.erase(it);
    } else {
      ++it;
    }
  }

  // Fig. 12 (left): align new partitions to the shortest involved length.
  int64_t shortest = victim.end - victim.start;
  int64_t range_start = victim.start;
  int64_t range_end = victim.end;
  for (const Partition& p : l1_inputs) {
    shortest = std::min(shortest, p.end - p.start);
    range_start = std::min(range_start, p.start);
    range_end = std::max(range_end, p.end);
  }
  std::vector<int64_t> boundaries;
  for (int64_t b = range_start; b <= range_end; b += shortest) {
    boundaries.push_back(b);
  }

  std::vector<TableHandle*> inputs;
  for (TableHandle& t : victim.tables) inputs.push_back(&t);
  for (Partition& p : l1_inputs) {
    for (TableHandle& t : p.tables) inputs.push_back(&t);
  }

  std::vector<MergeSegment> outputs;
  TU_RETURN_IF_ERROR(
      MergePartitionTables(inputs, boundaries, /*to_slow=*/false, &outputs));

  // Install the new L1 partitions. Segments beyond the merged range (rows
  // of wide-spanning head chunks) land in an existing L1 partition of the
  // same span when one exists, else become their own partition — the next
  // L0 compaction touching that range will pull them into its merge.
  for (MergeSegment& seg : outputs) {
    Partition* existing = nullptr;
    for (Partition& p : l1_) {
      if (p.start == seg.start && p.end == seg.end) {
        existing = &p;
        break;
      }
    }
    if (existing != nullptr) {
      for (TableHandle& t : seg.tables) {
        existing->tables.push_back(std::move(t));
      }
      continue;
    }
    Partition p;
    p.start = seg.start;
    p.end = seg.end;
    p.tables = std::move(seg.tables);
    l1_.push_back(std::move(p));
  }
  std::sort(l1_.begin(), l1_.end(),
            [](const Partition& a, const Partition& b) {
              return a.start < b.start;
            });

  // Durability order: the manifest must reference the outputs before any
  // input is unlinked — a crash in between leaves only removable orphans,
  // never a manifest pointing at deleted tables. Delete failures are
  // tolerated for the same reason.
  TU_RETURN_IF_ERROR(SaveManifest());
  for (const TableHandle& t : victim.tables) {
    (void)DeleteTable(t);
  }
  for (const Partition& p : l1_inputs) {
    for (const TableHandle& t : p.tables) {
      (void)DeleteTable(t);
    }
  }

  stats_.l0_to_l1_compactions.fetch_add(1, std::memory_order_relaxed);
  const uint64_t l0_l1_us = NowUs() - start_us;
  stats_.compaction_us.fetch_add(l0_l1_us, std::memory_order_relaxed);
  if (h_compact_l0_l1_us_ != nullptr) h_compact_l0_l1_us_->Observe(l0_l1_us);
  if (trace_ != nullptr) {
    trace_->Record("compact.l0l1", "us=" + std::to_string(l0_l1_us));
  }
  return Status::OK();
}

Status TimePartitionedLsm::MaybeCompactL1ToL2() {
  while (!l1_.empty()) {
    const int64_t w_start = AlignDown(l1_.front().start, l2_len_ms_);
    const int64_t w_end = w_start + l2_len_ms_;

    // The window must be "closed": newer data already exists beyond it
    // (margin of one trigger's worth of L0 partitions).
    int64_t newest_end = INT64_MIN;
    for (const Partition& p : l0_) newest_end = std::max(newest_end, p.end);
    for (const Partition& p : l1_) newest_end = std::max(newest_end, p.end);
    const int64_t margin = l0_len_ms_ * options_.l0_partition_trigger;
    if (newest_end < w_end + margin) return Status::OK();

    // Collect the L1 partitions inside the window.
    std::vector<Partition> inputs;
    for (auto it = l1_.begin(); it != l1_.end();) {
      if (it->start >= w_start && it->start < w_end) {
        inputs.push_back(std::move(*it));
        it = l1_.erase(it);
      } else {
        ++it;
      }
    }
    if (inputs.empty()) return Status::OK();
    TU_RETURN_IF_ERROR(CompactL1WindowToL2(w_start, w_end, std::move(inputs)));
  }
  return Status::OK();
}

Status TimePartitionedLsm::CompactL1WindowToL2(int64_t w_start, int64_t w_end,
                                               std::vector<Partition> inputs) {
  const uint64_t start_us = NowUs();

  std::vector<TableHandle*> input_tables;
  for (Partition& p : inputs) {
    for (TableHandle& t : p.tables) input_tables.push_back(&t);
  }

  // Existing L2 partitions overlapping the window => this is stale
  // (out-of-order) data: generate patches instead of rewriting them.
  std::vector<L2Partition*> overlapping;
  for (L2Partition& p : l2_) {
    if (p.start < w_end && p.end > w_start) overlapping.push_back(&p);
  }

  // Boundary granularity: the normal path (no overlapping L2) keeps the
  // whole window as one interval — one write to slow storage, zero slow
  // reads (Eq. 9). The stale path (§3.3 out-of-order handling) splits the
  // window at the edges of the covered L2 partitions, aligned to the
  // shortest covered partition length (Fig. 12 right).
  std::vector<int64_t> boundaries;
  if (overlapping.empty()) {
    boundaries = {w_start, w_end};
  } else {
    int64_t shortest = l2_len_ms_;
    for (L2Partition* p : overlapping) {
      shortest = std::min(shortest, p->end - p->start);
    }
    for (int64_t b = w_start; b <= w_end; b += shortest) boundaries.push_back(b);
  }

  // Rollups are materialized only on the clean path: the window's merged
  // output IS the partition's full content, so the buckets summarize it
  // exactly. The stale path rewrites existing partitions instead — its
  // segments mark rollup buckets dirty in RouteSegmentToL2.
  RollupBuild rollup_build;
  rollup_build.w_start = w_start;
  rollup_build.w_end = w_end;
  const bool want_rollups =
      overlapping.empty() && !options_.rollup_granularities_ms.empty();

  std::vector<MergeSegment> outputs;
  TU_RETURN_IF_ERROR(MergePartitionTables(input_tables, boundaries,
                                          /*to_slow=*/true, &outputs,
                                          want_rollups ? &rollup_build
                                                       : nullptr));

  // Route every segment — including ones the merge added beyond the window
  // for wide-spanning head-chunk rows — to the partition that truly covers
  // its time range. RouteSegmentToL2 may grow l2_, so the `overlapping`
  // pointers are dead past this point.
  for (MergeSegment& seg : outputs) {
    RouteSegmentToL2(std::move(seg));
  }
  if (!rollup_build.tables.empty()) {
    // Attach the rollups to the (freshly created) partition covering the
    // window. Extension segments never produce rollup buckets — they were
    // trimmed to [w_start, w_end) — so the window partition is the one
    // home. If no in-window segment existed the buckets were empty and no
    // table was built; the fallback delete only guards the impossible.
    L2Partition* home = nullptr;
    for (L2Partition& p : l2_) {
      if (p.start <= w_start && p.end >= w_end) {
        home = &p;
        break;
      }
    }
    for (TableHandle& t : rollup_build.tables) {
      if (home != nullptr) {
        home->rollups.push_back(std::move(t));
      } else {
        (void)DeleteTable(t);
      }
    }
    rollup_build.tables.clear();
  }
  std::sort(l2_.begin(), l2_.end(),
            [](const L2Partition& a, const L2Partition& b) {
              return a.start < b.start;
            });

  // Same durability order as CompactOldestL0: outputs reach the manifest
  // before inputs are unlinked.
  TU_RETURN_IF_ERROR(SaveManifest());
  for (const Partition& p : inputs) {
    for (const TableHandle& t : p.tables) {
      (void)DeleteTable(t);
    }
  }
  stats_.l1_to_l2_compactions.fetch_add(1, std::memory_order_relaxed);
  const uint64_t l1_l2_us = NowUs() - start_us;
  stats_.compaction_us.fetch_add(l1_l2_us, std::memory_order_relaxed);
  if (h_compact_l1_l2_us_ != nullptr) h_compact_l1_l2_us_->Observe(l1_l2_us);
  if (trace_ != nullptr) {
    trace_->Record("compact.l1l2", "us=" + std::to_string(l1_l2_us));
  }
  return Status::OK();
}

void TimePartitionedLsm::RouteSegmentToL2(MergeSegment segment) {
  L2Partition* covered = nullptr;
  for (L2Partition& p : l2_) {
    if (p.start <= segment.start && p.end >= segment.end) {
      covered = &p;
      break;
    }
  }
  if (covered == nullptr) {
    L2Partition p;
    p.start = segment.start;
    p.end = segment.end;
    for (TableHandle& t : segment.tables) {
      L2Entry entry;
      entry.base = std::move(t);
      p.entries.push_back(std::move(entry));
    }
    l2_.push_back(std::move(p));
    return;
  }
  // A segment landing inside an already-rolled-up window is a rewrite of
  // pre-aggregated time: every bucket the segment touches is stale until
  // the maintenance tick re-derives the partition.
  if (!covered->rollups.empty() && segment.start < segment.end) {
    covered->rollup_dirty.emplace_back(segment.start, segment.end - 1);
  }
  // Attach each table as a patch of the base entry whose ID range covers
  // it; strays go to the closest entry.
  for (TableHandle& t : segment.tables) {
    if (covered->entries.empty()) {
      L2Entry entry;
      entry.base = std::move(t);
      covered->entries.push_back(std::move(entry));
      continue;
    }
    size_t target = covered->entries.size() - 1;
    for (size_t e = 0; e < covered->entries.size(); ++e) {
      if (covered->entries[e].base.meta.max_series_id >=
          t.meta.min_series_id) {
        target = e;
        break;
      }
    }
    covered->entries[target].patches.push_back(std::move(t));
    stats_.patches_created.fetch_add(1, std::memory_order_relaxed);
  }
}

Status TimePartitionedLsm::MergePatchesIfNeeded() {
  // MergeEntryPatches removes the victim plus any ID-overlapping entries,
  // appends fresh ones, and can create or grow OTHER partitions (rows
  // beyond the partition's range get routed to their true home), so
  // restart the whole scan after each merge instead of trusting indices.
  // Termination: each merge moves out-of-range rows strictly toward (and
  // into) partitions that cover them, and merged entries restart with
  // zero patches.
  for (bool merged = true; merged;) {
    merged = false;
    for (size_t pi = 0; pi < l2_.size() && !merged; ++pi) {
      for (size_t e = 0; e < l2_[pi].entries.size(); ++e) {
        if (static_cast<int>(l2_[pi].entries[e].patches.size()) >
            options_.patch_threshold) {
          TU_RETURN_IF_ERROR(MergeEntryPatches(pi, e));
          merged = true;
          break;
        }
      }
    }
  }
  return Status::OK();
}

Status TimePartitionedLsm::MergeEntryPatches(size_t partition_index,
                                             size_t entry_index) {
  const uint64_t start_us = NowUs();
  L2Partition* partition = &l2_[partition_index];
  // Pull the victim PLUS every entry whose series-ID range overlaps the
  // merge's range, transitively. Patch tables can span several entries'
  // ID ranges (they are routed whole to one entry), so merging a single
  // entry can emit a base that overlaps its neighbours; two entries
  // covering the same ID would then rewrite the same rows independently,
  // and chunk-granularity seq dedup could over-rank a stale value past a
  // newer rewrite that rode the other entry (last-write-wins violation).
  std::vector<L2Entry> victims;
  victims.push_back(std::move(partition->entries[entry_index]));
  partition->entries.erase(partition->entries.begin() + entry_index);
  const auto range_of = [](const L2Entry& e) {
    uint64_t lo = e.base.meta.min_series_id;
    uint64_t hi = e.base.meta.max_series_id;
    for (const TableHandle& t : e.patches) {
      lo = std::min(lo, t.meta.min_series_id);
      hi = std::max(hi, t.meta.max_series_id);
    }
    return std::make_pair(lo, hi);
  };
  auto [lo, hi] = range_of(victims.front());
  for (bool grew = true; grew;) {
    grew = false;
    for (auto it = partition->entries.begin();
         it != partition->entries.end();) {
      const auto [elo, ehi] = range_of(*it);
      if (elo <= hi && ehi >= lo) {
        lo = std::min(lo, elo);
        hi = std::max(hi, ehi);
        victims.push_back(std::move(*it));
        it = partition->entries.erase(it);
        grew = true;
      } else {
        ++it;
      }
    }
  }

  std::vector<TableHandle*> inputs;
  for (L2Entry& entry : victims) {
    inputs.push_back(&entry.base);
    for (TableHandle& t : entry.patches) inputs.push_back(&t);
  }

  std::vector<int64_t> boundaries = {partition->start, partition->end};
  std::vector<MergeSegment> outputs;
  TU_RETURN_IF_ERROR(MergePartitionTables(inputs, boundaries,
                                          /*to_slow=*/true, &outputs));

  // Fig. 11: the merge yields new base tables with disjoint ID ranges.
  // Patch tables can carry rows outside this partition's time range (they
  // came from wide-spanning head chunks); those rows come back as extra
  // segments and are routed to the partitions that truly cover them.
  std::vector<MergeSegment> foreign;
  for (MergeSegment& seg : outputs) {
    if (seg.start >= partition->start && seg.end <= partition->end) {
      for (TableHandle& t : seg.tables) {
        L2Entry fresh;
        fresh.base = std::move(t);
        partition->entries.push_back(std::move(fresh));
      }
    } else {
      foreign.push_back(std::move(seg));
    }
  }
  std::sort(partition->entries.begin(), partition->entries.end(),
            [](const L2Entry& a, const L2Entry& b) {
              return a.base.meta.min_series_id < b.base.meta.min_series_id;
            });
  // RouteSegmentToL2 may grow l2_ and invalidate `partition` — done with
  // it past this point.
  partition = nullptr;
  for (MergeSegment& seg : foreign) {
    RouteSegmentToL2(std::move(seg));
  }
  std::sort(l2_.begin(), l2_.end(),
            [](const L2Partition& a, const L2Partition& b) {
              return a.start < b.start;
            });

  TU_RETURN_IF_ERROR(SaveManifest());
  for (const L2Entry& entry : victims) {
    (void)DeleteTable(entry.base);
    for (const TableHandle& t : entry.patches) {
      (void)DeleteTable(t);
    }
  }
  stats_.patch_merges.fetch_add(1, std::memory_order_relaxed);
  const uint64_t merge_us = NowUs() - start_us;
  stats_.compaction_us.fetch_add(merge_us, std::memory_order_relaxed);
  if (h_patch_merge_us_ != nullptr) h_patch_merge_us_->Observe(merge_us);
  if (trace_ != nullptr) {
    trace_->Record("patch.merge", "us=" + std::to_string(merge_us));
  }
  return Status::OK();
}

Status TimePartitionedLsm::RunDynamicSizeControl() {
  // Algorithm 1: adapt partition lengths to the fast-storage budget.
  uint64_t total_size = 0;
  for (const Partition& p : l0_) {
    for (const TableHandle& t : p.tables) total_size += t.meta.file_size;
  }
  for (const Partition& p : l1_) {
    for (const TableHandle& t : p.tables) total_size += t.meta.file_size;
  }
  if (total_size == 0) return Status::OK();

  const uint64_t st = options_.fast_storage_limit_bytes;
  const int64_t lb = options_.partition_lower_bound_ms;
  const int64_t ub = options_.partition_upper_bound_ms;
  const int64_t old_len = l0_len_ms_.load(std::memory_order_relaxed);
  int64_t len = old_len;
  const double thres = static_cast<double>(st) /
                       static_cast<double>(total_size) *
                       static_cast<double>(len);

  if (total_size > st) {
    grow_votes_ = 0;
    while (static_cast<double>(len) / 2 >= thres && len / 2 >= lb) {
      len /= 2;
    }
    if (len == old_len && len / 2 >= lb) {
      len /= 2;  // always make progress under pressure
    }
  } else {
    // Sparse data: grow partitions when level 1 already spans a level-2
    // window but the budget is underused.
    int64_t l1_span = 0;
    if (!l1_.empty()) l1_span = l1_.back().end - l1_.front().start;
    if (l1_span * 2 >= l2_len_ms_.load(std::memory_order_relaxed) &&
        total_size < st / 2 && len * 2 <= ub &&
        static_cast<double>(len) * 2 <= thres) {
      // Hysteresis: usage dips transiently right after an L1->L2 drain, so
      // grow only after several consecutive eligible observations.
      if (++grow_votes_ >= 3) {
        len *= 2;
        grow_votes_ = 0;
      }
    } else {
      grow_votes_ = 0;
    }
  }

  if (len != old_len) {
    // Keep the L2/L0 length ratio; L2 partitions never shrink below L0.
    const int64_t ratio =
        std::max<int64_t>(1, options_.l2_partition_ms /
                                 options_.l0_partition_ms);
    l0_len_ms_.store(len, std::memory_order_relaxed);
    l2_len_ms_.store(std::max(len * ratio, len), std::memory_order_relaxed);
  }
  return Status::OK();
}

Status TimePartitionedLsm::ApplyRetention(int64_t watermark) {
  std::lock_guard<std::mutex> lock(mu_);
  // Unreference first, unlink after the manifest is durable: a crash
  // mid-retention then leaves orphans (swept at open), not dangling refs.
  std::vector<TableHandle> doomed;
  auto retire_partitions = [&](std::vector<Partition>* level) {
    for (auto it = level->begin(); it != level->end();) {
      if (it->end <= watermark) {
        for (TableHandle& t : it->tables) {
          doomed.push_back(std::move(t));
        }
        stats_.partitions_retired.fetch_add(1, std::memory_order_relaxed);
        it = level->erase(it);
      } else {
        ++it;
      }
    }
  };
  retire_partitions(&l0_);
  retire_partitions(&l1_);
  for (auto it = l2_.begin(); it != l2_.end();) {
    if (it->end <= watermark) {
      for (L2Entry& e : it->entries) {
        doomed.push_back(std::move(e.base));
        for (TableHandle& t : e.patches) {
          doomed.push_back(std::move(t));
        }
      }
      for (TableHandle& t : it->rollups) {
        doomed.push_back(std::move(t));
      }
      stats_.partitions_retired.fetch_add(1, std::memory_order_relaxed);
      it = l2_.erase(it);
    } else {
      ++it;
    }
  }
  TU_RETURN_IF_ERROR(SaveManifest());
  for (const TableHandle& handle : doomed) {
    (void)DeleteTable(handle);
  }
  if (trace_ != nullptr && !doomed.empty()) {
    trace_->Record("retention", "watermark=" + std::to_string(watermark) +
                                    " tables=" + std::to_string(doomed.size()));
  }
  return Status::OK();
}

Status TimePartitionedLsm::NewIteratorForId(uint64_t id, const ReadContext& ctx,
                                            std::unique_ptr<Iterator>* out) {
  const int64_t t0 = ctx.t0;
  const int64_t t1 = ctx.t1;
  const ReadScope& scope = ctx.scope;
  query::QueryStats* qs = ctx.stats;
  // Chunks can overhang their partition end by at most one (pre-shrink)
  // partition length, so widen the selection window on the left.
  const int64_t overhang = options_.partition_upper_bound_ms;
  // Block-level pruning bound: no chunk of `id` starting past t1 can hold
  // in-range samples, so table iterators stop at this user key.
  std::string upper_bound = MakeChunkKey(id, t1);

  std::vector<std::unique_ptr<Iterator>> children;
  std::vector<std::shared_ptr<MemTable>> mem_pins;
  std::vector<std::shared_ptr<TableReader>> reader_pins;
  {
    std::lock_guard<std::mutex> mem_lock(mem_mu_);
    children.push_back(mem_->NewIterator());
    mem_pins.push_back(mem_);
    for (const auto& imm : immutables_) {
      children.push_back(imm->NewIterator());
      mem_pins.push_back(imm);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);

  // `max_data_ts` bounds the last sample a table can hold: L2 compaction
  // splits merged chunks at partition boundaries, so an L2 table's data
  // ends before its partition does — that bound makes the missing span of
  // a skipped (unreachable) table tight.
  // While the slow-tier breaker is open, don't touch slow tables at all:
  // an already-open reader would still fail (or half-succeed off the block
  // cache) on its lazy per-block Gets, and query reads would eat the
  // half-open probe budget the upload drainer needs to heal.
  const cloud::CircuitBreaker& slow_breaker = env_->slow().breaker();
  const bool slow_tier_down =
      slow_breaker.enabled() &&
      slow_breaker.state() == cloud::BreakerState::kOpen;

  auto consider_table = [&](TableHandle& handle,
                            int64_t max_data_ts) -> Status {
    if (qs != nullptr) ++qs->tables_considered;
    if (handle.meta.min_series_id > id || handle.meta.max_series_id < id) {
      if (qs != nullptr) ++qs->tables_pruned_id;
      return Status::OK();
    }
    if (handle.meta.min_ts > t1 || handle.meta.max_ts < t0 - overhang) {
      if (qs != nullptr) ++qs->tables_pruned_time;
      return Status::OK();
    }
    if (scope.allow_partial && handle.on_slow && slow_tier_down) {
      const int64_t lo = std::max(handle.meta.min_ts, t0);
      const int64_t hi = std::min(max_data_ts, t1);
      if (scope.missing != nullptr && lo <= hi) {
        scope.missing->emplace_back(lo, hi);
      }
      stats_.partial_read_skips.fetch_add(1, std::memory_order_relaxed);
      if (qs != nullptr) ++qs->tables_skipped_unreachable;
      return Status::OK();
    }
    Status s = OpenReader(&handle, ctx.fill_cache);
    if (!s.ok()) {
      // Partial read: an unreachable slow-tier table — or a corrupt/
      // quarantined table on either tier after repair attempts failed — is
      // skipped with its possible [min_ts, max_data_ts] span reported
      // missing. Other fast-tier failures (including deferred tables,
      // which live there) and definitive errors still fail the read.
      const bool skippable =
          (handle.on_slow &&
           (s.IsUnavailable() || s.IsIOError() || s.IsBusy())) ||
          s.IsCorruption();
      if (scope.allow_partial && skippable) {
        const int64_t lo = std::max(handle.meta.min_ts, t0);
        const int64_t hi = std::min(max_data_ts, t1);
        if (scope.missing != nullptr && lo <= hi) {
          scope.missing->emplace_back(lo, hi);
        }
        stats_.partial_read_skips.fetch_add(1, std::memory_order_relaxed);
        if (qs != nullptr) ++qs->tables_skipped_unreachable;
        return Status::OK();
      }
      return s;
    }
    if (!handle.reader->MayContainId(id)) {
      if (qs != nullptr) ++qs->tables_pruned_bloom;
      return Status::OK();
    }
    children.push_back(handle.reader->NewIterator(qs, upper_bound));
    reader_pins.push_back(handle.reader);
    return Status::OK();
  };

  auto consider_level = [&](std::vector<Partition>& level) -> Status {
    for (Partition& p : level) {
      if (p.start > t1 || p.end + overhang <= t0) {
        if (qs != nullptr) ++qs->partitions_pruned;
        continue;
      }
      for (TableHandle& t : p.tables) {
        TU_RETURN_IF_ERROR(consider_table(t, t.meta.max_ts + overhang));
      }
    }
    return Status::OK();
  };
  TU_RETURN_IF_ERROR(consider_level(l0_));
  TU_RETURN_IF_ERROR(consider_level(l1_));

  for (L2Partition& p : l2_) {
    if (p.start > t1 || p.end + overhang <= t0) {
      if (qs != nullptr) ++qs->partitions_pruned;
      continue;
    }
    for (L2Entry& e : p.entries) {
      TU_RETURN_IF_ERROR(consider_table(e.base, p.end - 1));
      for (TableHandle& t : e.patches) {
        TU_RETURN_IF_ERROR(consider_table(t, p.end - 1));
      }
    }
  }

  // Tables quarantined this process lifetime (open-time sweep or scrub) are
  // gone from the tree but may have held data in the query window. A
  // partial read flags the hole; a strict read proceeds — the bytes are
  // unrecoverable, so failing every future query would make the quarantine
  // worse than the corruption it contained.
  if (scope.allow_partial && scope.missing != nullptr) {
    for (const QuarantinedTable& q : quarantined_) {
      // A lost rollup table costs no raw data — never report it missing.
      if (q.is_rollup) continue;
      if (q.min_series_id > id || q.max_series_id < id) continue;
      const int64_t lo = std::max(q.min_ts, t0);
      const int64_t hi = std::min(q.max_data_ts, t1);
      if (lo <= hi) scope.missing->emplace_back(lo, hi);
    }
  }

  *out = std::make_unique<PinnedIterator>(
      NewMergingIterator(std::move(children)), std::move(mem_pins),
      std::move(reader_pins));
  return Status::OK();
}

Status TimePartitionedLsm::PlanRollupRead(
    uint64_t id, const ReadContext& ctx, int64_t granularity_ms,
    const std::vector<std::pair<int64_t, int64_t>>& extra_dirty,
    RollupPlan* out) {
  out->buckets.clear();
  out->raw_spans.clear();
  const int64_t t0 = ctx.t0;
  const int64_t t1 = ctx.t1;
  if (t0 > t1) return Status::OK();
  const int64_t g = granularity_ms;
  auto all_raw = [&]() {
    out->buckets.clear();
    out->raw_spans.assign(1, {t0, t1});
    return Status::OK();
  };
  if (g <= 0 || t1 >= INT64_MAX - g) return all_raw();

  // Only whole granularity buckets are servable: an edge bucket straddling
  // t0/t1 would fold out-of-range samples into the answer.
  const int64_t interior_lo = query::AlignUp(t0, g);
  const int64_t interior_hi = query::AlignDown(t1 + 1, g);  // exclusive
  if (interior_lo >= interior_hi) return all_raw();

  const int64_t overhang = options_.partition_upper_bound_ms;

  // Dirty spans (closed): data newer than any rollup. Start from the
  // caller's head-snapshot spans and add the write buffer's — a chunk
  // starting at max_ts can overhang by one pre-shrink partition length,
  // the same bound the raw read path prunes with.
  std::vector<std::pair<int64_t, int64_t>> dirty = extra_dirty;
  {
    std::lock_guard<std::mutex> mem_lock(mem_mu_);
    auto add_mem = [&dirty, overhang](const MemTable& m) {
      if (!m.empty()) dirty.emplace_back(m.min_ts(), m.max_ts() + overhang);
    };
    add_mem(*mem_);
    for (const auto& imm : immutables_) add_mem(*imm);
  }

  std::lock_guard<std::mutex> lock(mu_);
  // Every fast-tier (L0/L1) table that may hold this series is newer than
  // the rollups too: its samples have not been folded into any bucket yet.
  for (const std::vector<Partition>* level : {&l0_, &l1_}) {
    for (const Partition& p : *level) {
      for (const TableHandle& t : p.tables) {
        if (t.meta.min_series_id > id || t.meta.max_series_id < id) continue;
        dirty.emplace_back(t.meta.min_ts, t.meta.max_ts + overhang);
      }
    }
  }

  // Bucket-expand each dirty span to a half-open g-aligned span: a bucket
  // is either wholly clean or wholly dirty, never split.
  std::vector<std::pair<int64_t, int64_t>> dirty_aligned;
  for (const auto& [lo, hi] : dirty) {
    if (lo > hi) continue;
    dirty_aligned.emplace_back(query::AlignDown(lo, g),
                               query::AlignDown(hi, g) + g);
  }

  // Subtracts sorted half-open `cuts` from [lo, hi); returns clean spans.
  const auto subtract =
      [](const std::vector<std::pair<int64_t, int64_t>>& cuts, int64_t lo,
         int64_t hi) {
        std::vector<std::pair<int64_t, int64_t>> clean;
        int64_t cursor = lo;
        for (const auto& [clo, chi] : cuts) {
          if (chi <= cursor || clo >= hi) continue;
          if (clo > cursor) clean.emplace_back(cursor, clo);
          cursor = std::max(cursor, chi);
          if (cursor >= hi) break;
        }
        if (cursor < hi) clean.emplace_back(cursor, hi);
        return clean;
      };

  const cloud::CircuitBreaker& slow_breaker = env_->slow().breaker();
  const bool slow_tier_down =
      slow_breaker.enabled() &&
      slow_breaker.state() == cloud::BreakerState::kOpen;

  std::vector<std::pair<int64_t, int64_t>> covered;  // half-open, g-aligned
  for (L2Partition& p : l2_) {
    if (p.rollups.empty()) continue;
    if (p.start >= interior_hi || p.end <= interior_lo) continue;
    TableHandle* handle = nullptr;
    for (TableHandle& t : p.rollups) {
      if (t.meta.rollup_granularity_ms == g) {
        handle = &t;
        break;
      }
    }
    if (handle == nullptr) continue;

    // Candidate span: g-buckets wholly inside both the partition and the
    // query interior (compaction trimmed buckets to the partition window,
    // so nothing outside it exists in the table anyway).
    const int64_t cand_lo = std::max(interior_lo, query::AlignUp(p.start, g));
    const int64_t cand_hi =
        std::min(interior_hi, query::AlignDown(p.end, g));
    if (cand_lo >= cand_hi) continue;

    std::vector<std::pair<int64_t, int64_t>> cuts = dirty_aligned;
    for (const auto& [lo, hi] : p.rollup_dirty) {
      if (lo > hi) continue;
      cuts.emplace_back(query::AlignDown(lo, g), query::AlignDown(hi, g) + g);
    }
    std::sort(cuts.begin(), cuts.end());
    const auto clean = subtract(cuts, cand_lo, cand_hi);
    if (clean.empty()) continue;

    // Unreachable (breaker open) or unreadable rollup table: demote the
    // whole partition to the raw path, which reports its own exact missing
    // spans — breaker-open completeness composes unchanged.
    if (handle->on_slow && slow_tier_down) continue;
    if (!OpenReader(handle, ctx.fill_cache).ok()) continue;

    // One rollup chunk per series per table. A bloom miss or an id outside
    // the table's range means the series genuinely has no samples in this
    // window — covered with zero buckets, NOT a raw fallback.
    std::vector<compress::RollupBucket> buckets;
    if (handle->meta.min_series_id <= id && handle->meta.max_series_id >= id &&
        handle->reader->MayContainId(id)) {
      auto it = handle->reader->NewIterator();
      it->Seek(MakeInternalKey(MakeChunkKey(id, INT64_MIN), UINT64_MAX));
      if (it->Valid() && ChunkKeyId(InternalKeyUserKey(it->key())) == id) {
        const Slice value = it->value();
        uint64_t chunk_seq = 0;
        int64_t chunk_g = 0;
        if (ChunkValueType(value) != ChunkType::kRollup ||
            !compress::DecodeRollupChunk(ChunkValuePayload(value), &chunk_seq,
                                         &chunk_g, &buckets)
                 .ok() ||
            chunk_g != g) {
          continue;  // corrupt rollup chunk -> raw path for this partition
        }
      } else if (!it->status().ok()) {
        continue;
      }
    }

    size_t served = 0;
    for (const auto& [lo, hi] : clean) {
      covered.emplace_back(lo, hi);
      for (const compress::RollupBucket& b : buckets) {
        if (b.start >= lo && b.start + g <= hi) {
          out->buckets.push_back(b);
          ++served;
        }
      }
    }
    if (ctx.stats != nullptr) ctx.stats->rollup_buckets_served += served;
  }

  // Raw spans = the complement of the covered spans within [t0, t1].
  std::sort(covered.begin(), covered.end());
  int64_t cursor = t0;
  for (const auto& [lo, hi] : covered) {
    if (cursor > t1) break;
    if (lo > cursor) out->raw_spans.emplace_back(cursor, lo - 1);
    cursor = std::max(cursor, hi);
  }
  if (cursor <= t1) out->raw_spans.emplace_back(cursor, t1);
  std::sort(out->buckets.begin(), out->buckets.end(),
            [](const compress::RollupBucket& a,
               const compress::RollupBucket& b) { return a.start < b.start; });
  return Status::OK();
}

uint64_t TimePartitionedLsm::FastBytesUsed() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const Partition& p : l0_) {
    for (const TableHandle& t : p.tables) total += t.meta.file_size;
  }
  for (const Partition& p : l1_) {
    for (const TableHandle& t : p.tables) total += t.meta.file_size;
  }
  // Deferred L2 tables occupy the same budget until they drain.
  for (const L2Partition& p : l2_) {
    for (const L2Entry& e : p.entries) {
      if (!e.base.on_slow) total += e.base.meta.file_size;
      for (const TableHandle& t : e.patches) {
        if (!t.on_slow) total += t.meta.file_size;
      }
    }
    for (const TableHandle& t : p.rollups) {
      if (!t.on_slow) total += t.meta.file_size;
    }
  }
  return total;
}

void TimePartitionedLsm::UpdateFastResidentGaugeLocked() {
  uint64_t total = 0;
  for (const Partition& p : l0_) {
    for (const TableHandle& t : p.tables) total += t.meta.file_size;
  }
  for (const Partition& p : l1_) {
    for (const TableHandle& t : p.tables) total += t.meta.file_size;
  }
  for (const L2Partition& p : l2_) {
    for (const L2Entry& e : p.entries) {
      if (!e.base.on_slow) total += e.base.meta.file_size;
      for (const TableHandle& t : e.patches) {
        if (!t.on_slow) total += t.meta.file_size;
      }
    }
    for (const TableHandle& t : p.rollups) {
      if (!t.on_slow) total += t.meta.file_size;
    }
  }
  fast_resident_bytes_.store(total, std::memory_order_relaxed);
}

uint64_t TimePartitionedLsm::SlowBytesUsed() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const L2Partition& p : l2_) {
    for (const L2Entry& e : p.entries) {
      total += e.base.meta.file_size;
      for (const TableHandle& t : e.patches) total += t.meta.file_size;
    }
    for (const TableHandle& t : p.rollups) total += t.meta.file_size;
  }
  return total;
}

size_t TimePartitionedLsm::NumL0Partitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return l0_.size();
}

size_t TimePartitionedLsm::NumL1Partitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return l1_.size();
}

size_t TimePartitionedLsm::NumL2Partitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return l2_.size();
}

size_t TimePartitionedLsm::NumL2Patches() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const L2Partition& p : l2_) {
    for (const L2Entry& e : p.entries) total += e.patches.size();
  }
  return total;
}

size_t TimePartitionedLsm::NumDeferredTables() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const L2Partition& p : l2_) {
    for (const L2Entry& e : p.entries) {
      if (!e.base.on_slow) ++total;
      for (const TableHandle& t : e.patches) {
        if (!t.on_slow) ++total;
      }
    }
    for (const TableHandle& t : p.rollups) {
      if (!t.on_slow) ++total;
    }
  }
  return total;
}

size_t TimePartitionedLsm::NumRollupTables() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const L2Partition& p : l2_) total += p.rollups.size();
  return total;
}

size_t TimePartitionedLsm::NumDirtyRollupPartitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const L2Partition& p : l2_) {
    if (!p.rollups.empty() && !p.rollup_dirty.empty()) ++total;
  }
  return total;
}

uint64_t TimePartitionedLsm::DeferredBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const L2Partition& p : l2_) {
    for (const L2Entry& e : p.entries) {
      if (!e.base.on_slow) total += e.base.meta.file_size;
      for (const TableHandle& t : e.patches) {
        if (!t.on_slow) total += t.meta.file_size;
      }
    }
    for (const TableHandle& t : p.rollups) {
      if (!t.on_slow) total += t.meta.file_size;
    }
  }
  return total;
}

Status TimePartitionedLsm::DrainDeferredUploads(size_t* drained) {
  if (drained != nullptr) *drained = 0;
  // One drain pass at a time; a tick overlapping an explicit call just
  // skips (the other pass is doing the work).
  std::unique_lock<std::mutex> drain_lock(drain_mu_, std::try_to_lock);
  if (!drain_lock.owns_lock()) return Status::OK();

  // While the breaker is firmly open, don't even attempt: the cooldown
  // hasn't elapsed, so every upload would be rejected up front. Once it
  // reports half-open, the first upload below IS the probe.
  if (env_->slow().breaker().enabled() &&
      env_->slow().breaker().state() == cloud::BreakerState::kOpen) {
    return Status::OK();
  }

  size_t done = 0;
  while (!shutting_down_.load(std::memory_order_acquire)) {
    // Pick the oldest deferred table under the manifest lock...
    uint64_t table_id = 0;
    uint32_t table_crc = 0;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const L2Partition& p : l2_) {
        for (const L2Entry& e : p.entries) {
          if (!e.base.on_slow) {
            table_id = e.base.meta.table_id;
            table_crc = e.base.meta.object_crc32c;
            found = true;
            break;
          }
          for (const TableHandle& t : e.patches) {
            if (!t.on_slow) {
              table_id = t.meta.table_id;
              table_crc = t.meta.object_crc32c;
              found = true;
              break;
            }
          }
          if (found) break;
        }
        for (const TableHandle& t : p.rollups) {
          if (found) break;
          if (!t.on_slow) {
            table_id = t.meta.table_id;
            table_crc = t.meta.object_crc32c;
            found = true;
          }
        }
        if (found) break;
      }
    }
    if (!found) break;

    // ...then upload outside it (the slow tier sleeps; holding mu_ through
    // that would stall every flush and query). Verify the parked fast copy
    // against the manifest CRC first: uploading rotted bytes would replace
    // the one corruption the scrub could otherwise have repaired.
    std::string data;
    Status s = env_->fast().ReadFileToString(FastName(table_id), &data);
    if (s.ok() && table_crc != 0 &&
        crc32c::Value(data.data(), data.size()) != table_crc) {
      s = Status::Corruption("deferred table " + std::to_string(table_id) +
                             " corrupt on fast tier; not uploading");
    }
    if (s.ok()) s = UploadBufferToSlow(table_id, data, table_crc);
    if (!s.ok()) {
      // Outage persists (or re-tripped mid-drain): stop quietly, the next
      // tick retries. Anything already drained stays drained. Reported as
      // kDrain (noted, never latched) so the error handler can count it.
      stats_.deferred_drain_failures.fetch_add(1, std::memory_order_relaxed);
      RecordBackgroundError(BgWorkKind::kDrain, s);
      break;
    }

    // Flip the handle and commit the manifest; only then unlink the fast
    // copy (crash in between leaves a fast orphan for the open-time sweep,
    // never a manifest entry without bytes).
    bool flipped = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (L2Partition& p : l2_) {
        auto flip = [&](TableHandle& t) {
          if (t.meta.table_id == table_id && !t.on_slow) {
            t.on_slow = true;
            t.reader.reset();  // readers reopen against the slow tier
            flipped = true;
          }
        };
        for (L2Entry& e : p.entries) {
          flip(e.base);
          for (TableHandle& t : e.patches) flip(t);
        }
        for (TableHandle& t : p.rollups) flip(t);
      }
      if (flipped) {
        Status ms = SaveManifest();
        if (!ms.ok()) return ms;
      }
    }
    if (!flipped) {
      // The table vanished while we uploaded (retention / patch merge):
      // remove the now-orphaned object, best effort.
      (void)env_->slow().DeleteObject(SlowKey(table_id));
      continue;
    }
    (void)env_->fast().DeleteFile(FastName(table_id));
    stats_.deferred_uploads_drained.fetch_add(1, std::memory_order_relaxed);
    ++done;
  }
  if (drained != nullptr) *drained = done;
  if (trace_ != nullptr && done > 0) {
    trace_->Record("deferred.drain", "tables=" + std::to_string(done));
  }
  return Status::OK();
}

Status TimePartitionedLsm::MaintainRollups(size_t* rederived) {
  if (rederived != nullptr) *rederived = 0;
  if (options_.rollup_granularities_ms.empty()) return Status::OK();
  // The re-merge reads the partition's slow-tier tables; while the breaker
  // is open every one of those reads would fail. Keep the dirty spans —
  // the planner serves them raw until the tier heals.
  if (env_->slow().breaker().enabled() &&
      env_->slow().breaker().state() == cloud::BreakerState::kOpen) {
    return Status::OK();
  }

  std::lock_guard<std::mutex> lock(mu_);
  // Budget: at most one partition per call — the re-merge reads the whole
  // partition, so this keeps a maintenance tick bounded.
  for (L2Partition& p : l2_) {
    if (p.rollups.empty() || p.rollup_dirty.empty()) continue;

    std::vector<TableHandle*> inputs;
    for (L2Entry& e : p.entries) {
      inputs.push_back(&e.base);
      for (TableHandle& t : e.patches) inputs.push_back(&t);
    }
    RollupBuild build;
    build.w_start = p.start;
    build.w_end = p.end;
    build.skip_raw = true;  // refresh the rollups, keep the raw tables
    std::vector<MergeSegment> outputs;  // stays empty under skip_raw
    Status s = MergePartitionTables(inputs, {p.start, p.end}, /*to_slow=*/true,
                                    &outputs, &build);
    if (!s.ok()) {
      for (const TableHandle& t : build.tables) (void)DeleteTable(t);
      return s;
    }

    // Same durability order as compactions: the manifest references the
    // fresh rollups before the stale ones are unlinked.
    std::vector<TableHandle> stale = std::move(p.rollups);
    p.rollups = std::move(build.tables);
    p.rollup_dirty.clear();
    TU_RETURN_IF_ERROR(SaveManifest());
    for (const TableHandle& t : stale) (void)DeleteTable(t);

    stats_.rollup_partitions_rederived.fetch_add(1, std::memory_order_relaxed);
    if (rederived != nullptr) *rederived = 1;
    if (trace_ != nullptr) {
      trace_->Record("rollup.rederive",
                     "partition_start=" + std::to_string(p.start));
    }
    break;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Scrub support (core::Scrubber)
// ---------------------------------------------------------------------------

namespace {

/// In-memory TableSource over already-downloaded bytes; lets the scrub
/// block-walk a table it has just read without touching the tier again.
class BufferTableSource : public TableSource {
 public:
  explicit BufferTableSource(const std::string* data) : data_(data) {}
  Status ReadAt(uint64_t offset, size_t n, std::string* out) const override {
    if (offset > data_->size() || n > data_->size() - offset) {
      return Status::Corruption("short table read");
    }
    out->assign(data_->data() + offset, n);
    return Status::OK();
  }
  uint64_t Size() const override { return data_->size(); }

 private:
  const std::string* data_;
};

/// Structural verification for tables built before whole-file checksums
/// existed (object_crc32c == 0 in the manifest): parse the footer/index and
/// walk every data block so each per-block CRC is checked.
Status VerifyTableBlocks(const std::string& data) {
  TableReaderOptions opts;
  opts.verify_checksums = true;
  opts.corrupt_read_retries = 0;  // the source is a buffer; retries are moot
  std::unique_ptr<TableSource> source =
      std::make_unique<BufferTableSource>(&data);
  std::unique_ptr<TableReader> reader;
  TU_RETURN_IF_ERROR(TableReader::Open(opts, std::move(source), &reader));
  auto it = reader->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
  }
  return it->status();
}

}  // namespace

std::vector<TimePartitionedLsm::TableListEntry> TimePartitionedLsm::ListTables()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TableListEntry> out;
  auto add = [&out](const TableHandle& t) {
    out.push_back(TableListEntry{t.meta.table_id, t.on_slow, t.meta.file_size,
                                 t.meta.object_crc32c});
  };
  for (const Partition& p : l0_) {
    for (const TableHandle& t : p.tables) add(t);
  }
  for (const Partition& p : l1_) {
    for (const TableHandle& t : p.tables) add(t);
  }
  for (const L2Partition& p : l2_) {
    for (const L2Entry& e : p.entries) {
      add(e.base);
      for (const TableHandle& t : e.patches) add(t);
    }
    for (const TableHandle& t : p.rollups) add(t);
  }
  std::sort(out.begin(), out.end(),
            [](const TableListEntry& a, const TableListEntry& b) {
              return a.table_id < b.table_id;
            });
  return out;
}

TableHandle* TimePartitionedLsm::FindTableLocked(uint64_t table_id) {
  for (std::vector<Partition>* level : {&l0_, &l1_}) {
    for (Partition& p : *level) {
      for (TableHandle& t : p.tables) {
        if (t.meta.table_id == table_id) return &t;
      }
    }
  }
  for (L2Partition& p : l2_) {
    for (L2Entry& e : p.entries) {
      if (e.base.meta.table_id == table_id) return &e.base;
      for (TableHandle& t : e.patches) {
        if (t.meta.table_id == table_id) return &t;
      }
    }
    for (TableHandle& t : p.rollups) {
      if (t.meta.table_id == table_id) return &t;
    }
  }
  return nullptr;
}

int64_t TimePartitionedLsm::DataBoundLocked(uint64_t table_id) const {
  for (const std::vector<Partition>* level : {&l0_, &l1_}) {
    for (const Partition& p : *level) {
      for (const TableHandle& t : p.tables) {
        if (t.meta.table_id == table_id) {
          return t.meta.max_ts + options_.partition_upper_bound_ms;
        }
      }
    }
  }
  for (const L2Partition& p : l2_) {
    for (const L2Entry& e : p.entries) {
      if (e.base.meta.table_id == table_id) return p.end - 1;
      for (const TableHandle& t : e.patches) {
        if (t.meta.table_id == table_id) return p.end - 1;
      }
    }
    for (const TableHandle& t : p.rollups) {
      if (t.meta.table_id == table_id) return p.end - 1;
    }
  }
  return 0;
}

bool TimePartitionedLsm::RemoveTableLocked(uint64_t table_id) {
  for (std::vector<Partition>* level : {&l0_, &l1_}) {
    for (Partition& p : *level) {
      const size_t before = p.tables.size();
      std::erase_if(p.tables, [table_id](const TableHandle& t) {
        return t.meta.table_id == table_id;
      });
      if (p.tables.size() != before) {
        std::erase_if(*level,
                      [](const Partition& q) { return q.tables.empty(); });
        return true;
      }
    }
  }
  for (L2Partition& p : l2_) {
    for (size_t i = 0; i < p.entries.size(); ++i) {
      L2Entry& e = p.entries[i];
      if (e.base.meta.table_id == table_id) {
        // The base goes; its patches still carry valid data — promote each
        // to a standalone entry (same rule as RecoverStorageState).
        std::vector<TableHandle> patches = std::move(e.patches);
        p.entries.erase(p.entries.begin() + static_cast<ptrdiff_t>(i));
        for (TableHandle& t : patches) {
          L2Entry promoted;
          promoted.base = std::move(t);
          p.entries.push_back(std::move(promoted));
        }
        std::sort(p.entries.begin(), p.entries.end(),
                  [](const L2Entry& a, const L2Entry& b) {
                    return a.base.meta.min_series_id < b.base.meta.min_series_id;
                  });
        std::erase_if(l2_,
                      [](const L2Partition& q) { return q.entries.empty(); });
        return true;
      }
      const size_t before = e.patches.size();
      std::erase_if(e.patches, [table_id](const TableHandle& t) {
        return t.meta.table_id == table_id;
      });
      if (e.patches.size() != before) return true;
    }
    // Removing a rollup table just degrades its partition to the raw path —
    // no promotion or partition pruning needed.
    const size_t before = p.rollups.size();
    std::erase_if(p.rollups, [table_id](const TableHandle& t) {
      return t.meta.table_id == table_id;
    });
    if (p.rollups.size() != before) return true;
  }
  return false;
}

Status TimePartitionedLsm::ScrubOneTable(uint64_t table_id, bool repair,
                                         ScrubOutcome* outcome,
                                         std::string* detail,
                                         uint64_t* bytes_verified) {
  *outcome = ScrubOutcome::kSkipped;
  detail->clear();

  // Snapshot the handle's metadata under the lock; all tier I/O below runs
  // outside it (a slow-tier download under mu_ would stall every flush).
  bool on_slow = false;
  TableMeta meta;
  int64_t max_data_ts = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    TableHandle* t = FindTableLocked(table_id);
    if (t == nullptr) {
      *detail = "not in manifest (raced a compaction?)";
      return Status::OK();
    }
    on_slow = t->on_slow;
    meta = t->meta;
    max_data_ts = DataBoundLocked(table_id);
  }
  const uint64_t file_size = meta.file_size;
  const uint32_t crc = meta.object_crc32c;

  // Reads the table's bytes from one tier. NotFound counts as corruption
  // (the manifest says the copy should exist); other failures are
  // environmental and abort the scrub of this table.
  auto read_copy = [&](bool slow, std::string* data) -> Status {
    if (slow) {
      cloud::ObjectStore& store = env_->slow();
      return cloud::RunWithRetry(
          store.sim().retry, &store.counters(), "scrub get " + SlowKey(table_id),
          [&] { return store.GetObject(SlowKey(table_id), data); },
          &shutting_down_);
    }
    return env_->fast().ReadFileToString(FastName(table_id), data);
  };
  auto verify_copy = [&](const std::string& data) -> Status {
    if (bytes_verified != nullptr) *bytes_verified += data.size();
    if (file_size != 0 && data.size() != file_size) {
      return Status::Corruption("size " + std::to_string(data.size()) +
                                " != manifest " + std::to_string(file_size));
    }
    if (crc != 0) {
      if (crc32c::Value(data.data(), data.size()) != crc) {
        return Status::Corruption("whole-file crc mismatch");
      }
      return Status::OK();
    }
    return VerifyTableBlocks(data);
  };

  std::string primary;
  Status s = read_copy(on_slow, &primary);
  if (s.ok()) s = verify_copy(primary);
  if (s.ok()) {
    // A runtime quarantine (read-path verdict) is overruled by a clean
    // full verification — e.g. the poisoning was a since-healed transient
    // flip during open. Lift it so queries use the table again.
    std::lock_guard<std::mutex> lock(mu_);
    if (TableHandle* t = FindTableLocked(table_id);
        t != nullptr && t->quarantined) {
      t->quarantined = false;
      t->reader.reset();
    }
    *outcome = ScrubOutcome::kClean;
    return Status::OK();
  }
  if (!s.IsCorruption() && !s.IsNotFound()) return s;  // tier unreachable
  const std::string primary_fault = s.ToString();

  if (!repair) {
    *outcome = ScrubOutcome::kCorrupt;
    *detail = primary_fault;
    return Status::OK();
  }

  // The other tier may hold a healthy duplicate: a deferred L2 table's slow
  // copy uploaded just before a crash, or a fast copy not yet unlinked
  // after a drain. Verify before trusting it — repairing from rot would
  // just copy the disease.
  std::string alt;
  Status alt_read = read_copy(!on_slow, &alt);
  Status alt_ok = alt_read.ok() ? verify_copy(alt) : alt_read;
  if (alt_ok.ok()) {
    if (on_slow) {
      TU_RETURN_IF_ERROR(UploadBufferToSlow(table_id, alt, crc));
    } else {
      TU_RETURN_IF_ERROR(
          env_->fast().WriteStringToFile(FastName(table_id), alt));
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (TableHandle* t = FindTableLocked(table_id); t != nullptr) {
      t->reader.reset();  // readers reopen against the healed bytes
      t->quarantined = false;
    }
    *outcome = ScrubOutcome::kRepaired;
    *detail = primary_fault + "; repaired from " +
              (on_slow ? "fast" : "slow") + " tier copy";
    return Status::OK();
  }
  if (!alt_ok.IsCorruption() && !alt_ok.IsNotFound()) {
    // Can't tell whether a healthy copy exists (tier down): leave the
    // table alone, the next pass decides.
    return alt_ok;
  }

  // No healthy copy anywhere: make the quarantine durable. The corrupt
  // bytes are deleted best-effort — the open-time sweep catches leftovers.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!RemoveTableLocked(table_id)) {
      *detail = "vanished during scrub";
      return Status::OK();
    }
    quarantined_.push_back(QuarantinedTable{
        table_id, on_slow, primary_fault, meta.min_series_id,
        meta.max_series_id, meta.min_ts, max_data_ts});
    stats_.tables_quarantined.fetch_add(1, std::memory_order_relaxed);
    TU_RETURN_IF_ERROR(SaveManifest());
  }
  TableHandle doomed;
  doomed.meta.table_id = table_id;
  doomed.on_slow = on_slow;
  (void)DeleteTable(doomed);
  doomed.on_slow = !on_slow;
  (void)DeleteTable(doomed);
  *outcome = ScrubOutcome::kQuarantined;
  *detail = primary_fault + "; no healthy copy (" + alt_ok.ToString() + ")";
  return Status::OK();
}

Status TimePartitionedLsm::last_background_error() const {
  std::lock_guard<std::mutex> lock(bg_err_mu_);
  return last_bg_error_;
}

void TimePartitionedLsm::ClearBackgroundError() {
  std::lock_guard<std::mutex> lock(bg_err_mu_);
  last_bg_error_ = Status::OK();
}

void TimePartitionedLsm::RecordBackgroundError(BgWorkKind kind,
                                               const Status& s) {
  // Drain failures are reported but never latched: the deferred queue
  // already preserves availability, and latching would hold the DB
  // degraded for the whole outage the queue exists to ride out.
  if (kind != BgWorkKind::kDrain) {
    std::lock_guard<std::mutex> lock(bg_err_mu_);
    last_bg_error_ = s;
  }
  if (options_.on_background_error) options_.on_background_error(kind, s);
}

}  // namespace tu::lsm
