// TimePartitionedLsm: the paper's elastic time-partitioned LSM-tree (§3.3).
//
// Three levels on two storage tiers:
//   L0, L1 — short time partitions (default 30 min) on the fast tier.
//            L0 receives memtable flushes (tables may overlap in keys);
//            the L0->L1 compaction gathers each series/group's chunks
//            together and merges them into larger key-value pairs.
//   L2     — a SINGLE level of long partitions (default 2 h) on the slow
//            tier. Ordered data migrates L1->L2 with one write and zero
//            slow-tier reads (no overlapping-SSTable merges: the Eqs. 7-10
//            saving). Out-of-order arrivals into closed L2 partitions are
//            appended as PATCH tables routed by the ID ranges of the
//            partition's base tables (Fig. 11), merged only when a base
//            accumulates more than `patch_threshold` patches.
//
// Partition lengths adapt to a fast-storage budget (Algorithm 1): halved
// under pressure, doubled when sparse; compactions split and align
// partitions of mixed lengths (Fig. 12). Retention drops whole partitions.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cloud/tiered_env.h"
#include "compress/rollup.h"
#include "lsm/chunk_store.h"
#include "lsm/iterator.h"
#include "lsm/leveled_lsm.h"  // TableHandle
#include "lsm/memtable.h"
#include "lsm/table_builder.h"
#include "lsm/table_reader.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace tu::lsm {

/// Which background stage produced an error — reported alongside the
/// status so the DB-level error handler can classify by (scope x code)
/// instead of treating every background failure alike.
enum class BgWorkKind : int {
  kFlush = 0,       ///< memtable -> L0 table build/install
  kCompaction = 1,  ///< L0->L1 / L1->L2 / patch merge / size control
  kDrain = 2,       ///< deferred-upload drain (noted only; never quiesces)
};

struct TimeLsmOptions {
  /// Initial L0/L1 partition length (ms). Paper default: 30 minutes.
  int64_t l0_partition_ms = 30LL * 60 * 1000;
  /// Initial L2 partition length (ms). Paper default: 2 hours.
  int64_t l2_partition_ms = 2LL * 60 * 60 * 1000;
  /// Bounds for dynamic adjustment.
  int64_t partition_lower_bound_ms = 15LL * 60 * 1000;
  int64_t partition_upper_bound_ms = 8LL * 60 * 60 * 1000;
  /// Compact L0 when it holds more than this many partitions.
  int l0_partition_trigger = 2;
  /// Merge a base table with its patches beyond this count (§3.3).
  int patch_threshold = 3;
  size_t memtable_bytes = 4 << 20;
  size_t max_output_table_bytes = 2 << 20;
  /// Cap on merged chunk size during compaction ("merged into larger
  /// key-value pairs", Â§3.3). Kept moderate: per-chunk overhead is what
  /// the group model amortizes across members (Table 3).
  uint32_t max_samples_per_merged_chunk = 64;
  /// Fast-tier budget for Algorithm 1; 0 disables dynamic size control.
  uint64_t fast_storage_limit_bytes = 0;
  /// Continuous-aggregate granularities (ms), ascending. When non-empty,
  /// the clean L1->L2 compaction also materializes one rollup table per
  /// granularity per L2 partition (per-bucket min/max/sum/count, see
  /// compress/rollup.h) as a by-product of the merge pass it already
  /// runs. Empty disables rollups entirely.
  std::vector<int64_t> rollup_granularities_ms;
  /// Flush immutable memtables on a background worker (immutable queue).
  bool background_flush = false;
  /// Invoked for every key-value pair as it reaches level 0 — the hook the
  /// §3.3 logging scheme uses to write flush-mark records.
  std::function<void(const Slice& user_key, const Slice& value)> on_flush;
  /// Invoked (from the failing thread, no LSM locks held) whenever a
  /// background flush or maintenance pass fails, with the stage that
  /// failed; flush/compaction errors are also latched in
  /// last_background_error(). kDrain errors are reported but never
  /// latched — the deferred queue already preserves availability.
  std::function<void(BgWorkKind, const Status&)> on_background_error;
  /// Persist the level manifest to the fast tier after each mutation so a
  /// reopen recovers the tree.
  bool persist_manifest = false;
  /// Silent-corruption defenses (DESIGN.md "Data integrity and scrubbing").
  /// Whole-file CRC32C checksums are always recorded in the manifest at
  /// build time; these knobs control where they are re-verified.
  struct IntegrityOptions {
    /// After an L2 upload, read the object back and verify its whole-file
    /// CRC against the builder's checksum before committing (over and
    /// above the size check). Costs one extra Get per upload; off by
    /// default.
    bool verify_upload = false;
    /// Verify the whole-file CRC when opening a fast-tier table reader
    /// (catches at-rest rot before any block is served). Costs one full
    /// file read per open; off by default — the scrub job covers at-rest
    /// verification without the per-open tax.
    bool verify_fast_open = false;
    /// On a corrupt block or object during a read: evict the poisoned
    /// block-cache entry and re-fetch bypassing the cache, fall back to
    /// the other tier's copy at open, and only then quarantine the table
    /// and degrade to a partial result.
    bool self_healing_reads = true;
  };
  IntegrityOptions integrity;
  /// Observability registry (owned by the DB, outlives the LSM). When set,
  /// the tree records flush/compaction/table-build latency histograms and
  /// background-job events (lsm.* names, see DESIGN.md "Observability").
  obs::MetricsRegistry* metrics = nullptr;
  TableBuilderOptions table_options;
};

struct TimeLsmStats {
  std::atomic<uint64_t> flushes{0};
  std::atomic<uint64_t> l0_to_l1_compactions{0};
  std::atomic<uint64_t> l1_to_l2_compactions{0};
  std::atomic<uint64_t> patches_created{0};
  std::atomic<uint64_t> patch_merges{0};
  std::atomic<uint64_t> partitions_retired{0};
  std::atomic<uint64_t> fast_bytes_written{0};
  std::atomic<uint64_t> slow_bytes_written{0};
  std::atomic<uint64_t> compaction_us{0};
  /// Manifest-referenced tables found missing/short at open and dropped.
  std::atomic<uint64_t> tables_quarantined{0};
  /// Unreferenced table/.tmp files removed by the open-time sweep.
  std::atomic<uint64_t> orphans_swept{0};
  /// L2-logical tables parked on the fast tier because the upload failed
  /// (slow tier down / breaker open).
  std::atomic<uint64_t> deferred_tables_created{0};
  /// Deferred tables later uploaded and flipped to the slow tier.
  std::atomic<uint64_t> deferred_uploads_drained{0};
  /// Drain passes that stopped early on an upload failure.
  std::atomic<uint64_t> deferred_drain_failures{0};
  /// Slow-tier tables skipped by partial (allow_partial) reads.
  std::atomic<uint64_t> partial_read_skips{0};
  // -- Integrity (DESIGN.md "Data integrity and scrubbing") ----------------
  /// Corrupt blocks detected by the read path (block CRC mismatch).
  std::atomic<uint64_t> read_corruptions_detected{0};
  /// Of those, healed by a cache-evicting re-read (transient flips).
  std::atomic<uint64_t> read_corruptions_healed{0};
  /// Reader opens that failed on the handle's tier but succeeded from the
  /// other tier's healthy copy (deferred fast copies, pre-rename .tmp era).
  std::atomic<uint64_t> tier_fallback_opens{0};
  /// Tables quarantined at read time (both copies corrupt/unusable).
  std::atomic<uint64_t> runtime_quarantines{0};
  // -- Continuous aggregates ----------------------------------------------
  /// Rollup tables materialized by compaction (one per granularity per
  /// clean L1->L2 window) plus re-derivations.
  std::atomic<uint64_t> rollup_tables_built{0};
  /// Partitions whose dirty rollups the maintenance tick re-derived.
  std::atomic<uint64_t> rollup_partitions_rederived{0};
};

/// A table the open-time scan or the scrub job found unreadable. The table
/// is dropped from its level (the rest of the tree opens normally) and
/// reported here. The id/time span it may have covered is kept so partial
/// reads can flag the hole instead of silently shrinking.
struct QuarantinedTable {
  uint64_t table_id = 0;
  bool on_slow = false;
  std::string reason;
  uint64_t min_series_id = 0;
  uint64_t max_series_id = 0;
  int64_t min_ts = 0;
  /// Upper bound on data timestamps the table may have held — already
  /// includes chunk overhang (DataBoundLocked), unlike TableMeta::max_ts
  /// which is only the last chunk *key*.
  int64_t max_data_ts = 0;
  /// True for rollup tables: losing one degrades aggregate queries to the
  /// raw path but loses no data, so partial reads must NOT report its span
  /// missing.
  bool is_rollup = false;
};

class TimePartitionedLsm : public ChunkStore {
 public:
  TimePartitionedLsm(cloud::TieredEnv* env, std::string name,
                     TimeLsmOptions options, BlockCache* block_cache);
  ~TimePartitionedLsm() override;

  Status Open() override;

  /// Inserts a chunk entry (key: §3.3 format; value: type byte + payload).
  Status Put(const Slice& user_key, const Slice& value) override;

  /// Flushes the memtable and drains all pending maintenance.
  Status FlushAll() override;

  /// Iterator over all data of series/group `id` intersecting
  /// [ctx.t0, ctx.t1]. With ctx.scope.allow_partial, unreachable slow-tier
  /// tables are skipped and their possible data span recorded in
  /// ctx.scope.missing. Pruning decisions (partition window, table meta,
  /// bloom, per-block upper bound) are counted into ctx.stats.
  using ChunkStore::NewIteratorForId;
  Status NewIteratorForId(uint64_t id, const ReadContext& ctx,
                          std::unique_ptr<Iterator>* out) override;

  /// Drops every partition whose data is entirely older than `watermark`.
  Status ApplyRetention(int64_t watermark) override;

  // -- Continuous aggregates -----------------------------------------------
  /// The rollup planner's answer for one series over [ctx.t0, ctx.t1] at
  /// one granularity: the pre-aggregated buckets the rollup partitions can
  /// serve, plus the raw spans (closed, merged, ascending) the caller must
  /// still answer from the raw batch path. Every granularity-aligned
  /// bucket lands wholly in one category — never split across both.
  struct RollupPlan {
    std::vector<compress::RollupBucket> buckets;  // ascending by start
    std::vector<std::pair<int64_t, int64_t>> raw_spans;
  };
  /// Plans and serves the rollup portion of an aggregate read. Rollups
  /// answer only bucket-aligned interiors of clean (non-dirty) L2 windows;
  /// unaligned edges, dirty buckets, windows still on the fast tier, and
  /// `extra_dirty` spans (closed; the caller passes spans its own head
  /// snapshot makes stale) all fall back to raw. Any rollup table that is
  /// unreachable (breaker open), quarantined, or fails to open/decode
  /// demotes its partition to raw — the raw path then reports exact
  /// missing spans, so breaker-open completeness composes unchanged.
  /// Serves ctx.stats->rollup_buckets_served.
  Status PlanRollupRead(uint64_t id, const ReadContext& ctx,
                        int64_t granularity_ms,
                        const std::vector<std::pair<int64_t, int64_t>>&
                            extra_dirty,
                        RollupPlan* out);
  /// Re-derives dirty rollups: picks at most one L2 partition with dirty
  /// buckets per call (the re-merge reads the whole partition, so the
  /// budget keeps a maintenance tick bounded), rebuilds its rollup tables
  /// from the current bases+patches and clears the dirty spans.
  /// `rederived` (nullable) reports how many partitions were refreshed.
  Status MaintainRollups(size_t* rederived = nullptr);
  size_t NumRollupTables() const;
  /// L2 partitions whose rollups have pending dirty spans.
  size_t NumDirtyRollupPartitions() const;

  /// Uploads deferred L2 tables (parked on the fast tier during a slow-tier
  /// outage) and flips them to the slow tier, one manifest commit per
  /// table. Stops at the first upload failure (the outage persists) — the
  /// first attempt doubles as the breaker's half-open probe. Skips cheaply
  /// when nothing is deferred or the breaker is still open. Safe to call
  /// from the maintenance worker; never fails the caller.
  Status DrainDeferredUploads(size_t* drained = nullptr);
  size_t NumDeferredTables() const;
  uint64_t DeferredBytes() const;

  // -- Scrub support (core::Scrubber) --------------------------------------
  /// One manifest-listed table as the scrub job sees it.
  struct TableListEntry {
    uint64_t table_id = 0;
    bool on_slow = false;
    uint64_t file_size = 0;
    uint32_t object_crc32c = 0;
  };
  enum class ScrubOutcome {
    kClean,        ///< primary copy verified intact
    kRepaired,     ///< primary corrupt, rebuilt from the other tier's copy
    kQuarantined,  ///< no healthy copy anywhere: removed from the manifest
    kCorrupt,      ///< corruption detected but repair was disabled
    kSkipped,      ///< table no longer in the manifest (raced a compaction)
  };
  /// Snapshot of every manifest-listed table, sorted by table_id.
  std::vector<TableListEntry> ListTables() const;
  /// Verifies one table end-to-end: whole-file CRC against the manifest
  /// checksum (block-walk fallback when no checksum is recorded). On
  /// corruption, with `repair`, rebuilds the primary copy from the other
  /// tier's healthy duplicate, or — when no healthy copy exists — removes
  /// the table from the manifest and records it in quarantined(). With
  /// `repair` false the scrub only detects (outcome kCorrupt), never
  /// mutates. Returns non-OK only for environmental failures (tier
  /// unreachable) — a corrupt table is an *outcome*, not an error.
  /// `bytes_verified` (nullable) accumulates payload bytes read.
  Status ScrubOneTable(uint64_t table_id, bool repair, ScrubOutcome* outcome,
                       std::string* detail, uint64_t* bytes_verified = nullptr);

  /// Sticky error from background flush/maintenance work (background_flush
  /// mode swallows per-operation statuses; this is how they surface).
  Status last_background_error() const;
  void ClearBackgroundError();

  /// Resume-probe entry point: replays retained work after a background
  /// failure — drains every immutable memtable still queued (a failed
  /// flush RETAINS its memtable, so acked-but-unflushed data survives the
  /// error) and re-runs the maintenance pass. Returns the first failure;
  /// OK means all retained inputs are durable again. Does NOT clear
  /// last_background_error() — the caller decides what a successful
  /// retry means for DB health.
  Status RetryBackgroundWork();

  // -- Introspection for benches/tests ------------------------------------
  const TimeLsmStats& stats() const { return stats_; }
  /// Tables dropped by the open-time consistency scan.
  std::vector<QuarantinedTable> quarantined() const {
    std::lock_guard<std::mutex> lock(mu_);
    return quarantined_;
  }
  int64_t l0_partition_ms() const {
    return l0_len_ms_.load(std::memory_order_relaxed);
  }
  int64_t l2_partition_ms() const {
    return l2_len_ms_.load(std::memory_order_relaxed);
  }
  /// Bytes resident on the fast tier: L0+L1 tables plus deferred L2 tables
  /// parked there during an outage.
  uint64_t FastBytesUsed() const;
  /// Lock-free snapshot of FastBytesUsed, refreshed after every manifest
  /// mutation — cheap enough for per-write admission checks.
  uint64_t FastBytesGauge() const {
    return fast_resident_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t SlowBytesUsed() const;
  size_t NumL0Partitions() const;
  size_t NumL1Partitions() const;
  size_t NumL2Partitions() const;
  /// Total patch tables currently attached in L2.
  size_t NumL2Patches() const;
  /// End of the L0 partition that would hold a chunk starting at `ts` —
  /// the bound heads use to close chunks at partition edges (§3.3).
  int64_t PartitionEndFor(int64_t ts) const override {
    // Lock-free: called on every sample append (hot path).
    const int64_t len = l0_len_ms_.load(std::memory_order_relaxed);
    return AlignDown(ts, len) + len;
  }

 private:
  struct Partition {
    int64_t start = 0;
    int64_t end = 0;
    std::vector<TableHandle> tables;  // L0 newest-first; L1 sorted by key
  };

  struct L2Entry {
    TableHandle base;
    std::vector<TableHandle> patches;
  };

  struct L2Partition {
    int64_t start = 0;
    int64_t end = 0;
    std::vector<L2Entry> entries;  // sorted by base min_series_id
    /// Rollup tables for this partition (at most one per configured
    /// granularity; meta.rollup_granularity_ms tells them apart). They
    /// flow through WriteTable like any L2 output, so CRC recording,
    /// deferred-upload parking, scrub and the orphan sweep all apply.
    std::vector<TableHandle> rollups;
    /// Closed time spans whose rollup buckets are stale: an out-of-order
    /// rewrite landed inside the already-rolled-up window. The planner
    /// serves the affected buckets raw until MaintainRollups re-derives
    /// the partition and clears this list.
    std::vector<std::pair<int64_t, int64_t>> rollup_dirty;
  };

  static int64_t AlignDown(int64_t ts, int64_t len) {
    // Works for negative timestamps too (floor division).
    int64_t q = ts / len;
    if (ts % len != 0 && ts < 0) --q;
    return q * len;
  }

  Status FlushMemTable(MemTable* mem);
  Status MaybeMaintain();
  Status CompactOldestL0();
  Status MaybeCompactL1ToL2();
  Status CompactL1WindowToL2(int64_t w_start, int64_t w_end,
                             std::vector<Partition> inputs);
  Status MergePatchesIfNeeded();
  Status MergeEntryPatches(size_t partition_index, size_t entry_index);
  Status RunDynamicSizeControl();

  /// One boundary interval's worth of merge output.
  struct MergeSegment {
    int64_t start = 0;
    int64_t end = 0;
    std::vector<TableHandle> tables;
  };

  /// Rollup side-build of MergePartitionTables: buckets fully inside
  /// [w_start, w_end) are encoded into one table per configured
  /// granularity (returned in `tables` with meta.rollup_granularity_ms
  /// set). With `skip_raw` the merge writes NO raw tables — the
  /// re-derivation mode MaintainRollups uses to refresh dirty rollups
  /// without rewriting the partition.
  struct RollupBuild {
    int64_t w_start = 0;
    int64_t w_end = 0;
    bool skip_raw = false;
    std::vector<TableHandle> tables;  // out
  };

  /// Sample-aware merge of `inputs` into per-partition tables aligned to
  /// `boundaries` (sorted, uniform step). Input chunks may carry rows
  /// outside the boundary range (wide-spanning head chunks buffer rewrites
  /// at arbitrary timestamps); the merge extends the boundary list by
  /// uniform steps to cover them, so `outputs` can include segments beyond
  /// the requested range. Callers must route every returned segment to a
  /// real partition of its time range — never fold it into a neighbour.
  /// With `rollup_build`, the same pass also materializes rollup tables
  /// (individual series only; groups contribute nothing).
  Status MergePartitionTables(std::vector<TableHandle*> inputs,
                              std::vector<int64_t> boundaries, bool to_slow,
                              std::vector<MergeSegment>* outputs,
                              RollupBuild* rollup_build = nullptr);

  /// Installs one slow-tier merge segment: if an existing L2 partition
  /// fully covers [start, end) the tables attach to it as ID-routed
  /// patches (or become its bases when empty); otherwise the segment
  /// becomes a new L2 partition. May grow l2_ — invalidates L2Partition
  /// pointers/references.
  void RouteSegmentToL2(MergeSegment segment);

  /// Opens the table reader; compaction reads pass fill_cache=false so
  /// they do not pollute the query block cache (RocksDB idiom). On a
  /// corrupt primary copy (with self_healing_reads) falls back to the
  /// other tier's duplicate, else quarantines the handle.
  Status OpenReader(TableHandle* handle, bool fill_cache = true);
  /// One tier-specific open attempt, including the manifest size check and
  /// (fast tier, opt-in) whole-file CRC verification.
  Status OpenReaderOnTier(TableHandle* handle, bool use_slow, bool fill_cache);
  /// Serializes/loads l0_/l1_/l2_ + counters to/from the fast tier.
  Status SaveManifest();
  Status LoadManifest();
  /// Post-LoadManifest consistency pass: quarantines manifest-referenced
  /// tables that are missing or size-mismatched, and sweeps unreferenced
  /// table/.tmp files (leftovers of a crash mid-compaction) from both tiers.
  Status RecoverStorageState();
  Status WriteTable(
      const std::vector<std::pair<std::string, std::string>>& entries,
      bool to_slow, TableHandle* out);
  /// The atomic .tmp -> verify -> rename upload protocol; used by
  /// WriteTable, the deferred-upload drainer and scrub repair.
  /// `expected_crc` is the builder's whole-file CRC32C (0 = compute from
  /// `data`), checked by the read-back verify when integrity.verify_upload
  /// is on.
  Status UploadBufferToSlow(uint64_t table_id, const Slice& data,
                            uint32_t expected_crc = 0);
  Status DeleteTable(const TableHandle& handle);
  /// Locates a live handle by id across all levels; caller holds mu_.
  TableHandle* FindTableLocked(uint64_t table_id);
  /// Upper bound on data timestamps table `table_id` may hold, including
  /// chunk overhang: its L2 partition's end, or meta.max_ts plus one
  /// pre-shrink partition length for L0/L1. Used to size the missing span
  /// a quarantine leaves behind.
  int64_t DataBoundLocked(uint64_t table_id) const;
  /// Drops the table from the manifest structures (an L2 base's patches are
  /// promoted to standalone entries, as in RecoverStorageState) and prunes
  /// emptied partitions. Returns false when the id is not present. Caller
  /// holds mu_ and is responsible for SaveManifest().
  bool RemoveTableLocked(uint64_t table_id);
  void RecordBackgroundError(BgWorkKind kind, const Status& s);
  /// Recomputes fast_resident_bytes_ from the levels; caller holds mu_.
  void UpdateFastResidentGaugeLocked();
  std::string FastName(uint64_t table_id) const;
  std::string SlowKey(uint64_t table_id) const;

  cloud::TieredEnv* env_;
  std::string name_;
  TimeLsmOptions options_;
  BlockCache* block_cache_;

  /// Two-lock design so background flush/compaction does not block
  /// foreground insertion (§3.3): `mem_mu_` guards the memtable and
  /// immutable queue only; `mu_` guards the level manifest. Lock order:
  /// mem_mu_ before mu_.
  mutable std::mutex mem_mu_;
  mutable std::mutex mu_;
  std::shared_ptr<MemTable> mem_;
  std::deque<std::shared_ptr<MemTable>> immutables_;
  std::unique_ptr<ThreadPool> flush_pool_;

  std::vector<Partition> l0_;  // sorted by start
  std::vector<Partition> l1_;  // sorted by start
  std::vector<L2Partition> l2_;  // sorted by start

  std::atomic<int64_t> l0_len_ms_;
  std::atomic<int64_t> l2_len_ms_;

  uint64_t next_table_id_ = 1;
  // Atomic: foreground Put stamps entries under mem_mu_ while background
  // compaction re-stamps merged chunks under mu_.
  std::atomic<uint64_t> next_seq_{1};
  int grow_votes_ = 0;  // Algorithm 1 growth hysteresis

  std::vector<QuarantinedTable> quarantined_;
  TimeLsmStats stats_;

  /// Cached observability instruments (all null when options_.metrics is
  /// null, turning each recording site into a no-op).
  obs::Histogram* h_memflush_us_ = nullptr;
  obs::Histogram* h_compact_l0_l1_us_ = nullptr;
  obs::Histogram* h_compact_l1_l2_us_ = nullptr;
  obs::Histogram* h_patch_merge_us_ = nullptr;
  obs::Histogram* h_table_build_us_ = nullptr;
  obs::EventTrace* trace_ = nullptr;

  /// Set by the destructor before waiting on the flush pool; cancels
  /// in-flight RunWithRetry backoffs so teardown never waits out a
  /// multi-second retry budget.
  std::atomic<bool> shutting_down_{false};
  /// See FastBytesGauge(); written under mu_ (UpdateFastResidentGaugeLocked).
  std::atomic<uint64_t> fast_resident_bytes_{0};
  /// Serializes drain passes (maintenance tick vs explicit calls).
  std::mutex drain_mu_;
  mutable std::mutex bg_err_mu_;
  Status last_bg_error_;  // guarded by bg_err_mu_
};

}  // namespace tu::lsm
