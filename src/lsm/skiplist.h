// SkipList: the MemTable's sorted index (§2.3), LevelDB-style —
// arena-allocated nodes, probabilistic height, single writer + concurrent
// readers (we additionally serialize writers externally).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "util/arena.h"
#include "util/random.h"
#include "util/slice.h"

namespace tu::lsm {

/// Keys are arena-owned byte strings compared with memcmp order. The
/// caller guarantees no duplicate keys are inserted.
class SkipList {
 public:
  explicit SkipList(Arena* arena);

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts `key` (copied into the arena by the caller beforehand; the
  /// Slice must point at arena memory).
  void Insert(const Slice& key);

  bool Contains(const Slice& key) const;

  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list) {}

    bool Valid() const { return node_ != nullptr; }
    Slice key() const;
    void Next();
    void SeekToFirst();
    void Seek(const Slice& target);

   private:
    const SkipList* list_;
    const void* node_ = nullptr;
  };

 private:
  struct Node;
  static constexpr int kMaxHeight = 12;

  Node* NewNode(const Slice& key, int height);
  int RandomHeight();
  /// First node with key >= target; prev[] receives the predecessors.
  Node* FindGreaterOrEqual(const Slice& key, Node** prev) const;

  Arena* arena_;
  Node* head_;
  std::atomic<int> max_height_{1};
  Random rnd_{0xdeadbeef};

  friend class Iterator;
};

}  // namespace tu::lsm
