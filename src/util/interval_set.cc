#include "util/interval_set.h"

#include <algorithm>

namespace tu::util {

void MergeIntervals(std::vector<TimeInterval>* intervals) {
  auto& iv = *intervals;
  iv.erase(std::remove_if(iv.begin(), iv.end(),
                          [](const TimeInterval& i) { return i.second < i.first; }),
           iv.end());
  if (iv.size() <= 1) return;
  std::sort(iv.begin(), iv.end());
  size_t out = 0;
  for (size_t i = 1; i < iv.size(); ++i) {
    // Closed intervals over integer ms: [0,9] and [10,19] are adjacent and
    // merge into [0,19]; guard the +1 against INT64_MAX sentinels.
    if (iv[out].second == INT64_MAX || iv[i].first <= iv[out].second + 1) {
      iv[out].second = std::max(iv[out].second, iv[i].second);
    } else {
      iv[++out] = iv[i];
    }
  }
  iv.resize(out + 1);
}

bool IntervalsContain(const std::vector<TimeInterval>& intervals, int64_t ts) {
  for (const auto& i : intervals) {
    if (ts >= i.first && ts <= i.second) return true;
  }
  return false;
}

}  // namespace tu::util
