// Status: result type for operations that can fail, following the
// LevelDB/RocksDB idiom (no exceptions in the storage layer).
#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace tu {

/// Result of an operation that can fail. Cheap to copy in the OK case
/// (single enum); carries a message otherwise.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound,
    kCorruption,
    kNotSupported,
    kInvalidArgument,
    kIOError,
    kBusy,
    kOutOfSpace,
    kUnavailable,
    kResourceExhausted,
  };

  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg = {}) {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg = {}) {
    return Status(Code::kCorruption, msg);
  }
  static Status NotSupported(std::string_view msg = {}) {
    return Status(Code::kNotSupported, msg);
  }
  static Status InvalidArgument(std::string_view msg = {}) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg = {}) {
    return Status(Code::kIOError, msg);
  }
  static Status Busy(std::string_view msg = {}) { return Status(Code::kBusy, msg); }
  static Status OutOfSpace(std::string_view msg = {}) {
    return Status(Code::kOutOfSpace, msg);
  }
  static Status Unavailable(std::string_view msg = {}) {
    return Status(Code::kUnavailable, msg);
  }
  static Status ResourceExhausted(std::string_view msg = {}) {
    return Status(Code::kResourceExhausted, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsOutOfSpace() const { return code_ == Code::kOutOfSpace; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable "CODE: message" string for logs and error reporting.
  std::string ToString() const;

 private:
  Status(Code code, std::string_view msg) : code_(code), msg_(msg) {}

  Code code_ = Code::kOk;
  std::string msg_;
};

/// Evaluates `expr`; if the resulting Status is not OK, returns it from the
/// enclosing function. Storage-layer internal plumbing helper.
#define TU_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::tu::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace tu
