#include "util/memory_tracker.h"

#include <sstream>

namespace tu {

const char* MemCategoryName(MemCategory c) {
  switch (c) {
    case MemCategory::kInvertedIndex:
      return "inverted_index";
    case MemCategory::kTags:
      return "tags";
    case MemCategory::kSamples:
      return "samples";
    case MemCategory::kBlockMeta:
      return "block_meta";
    case MemCategory::kMemtable:
      return "memtable";
    case MemCategory::kCache:
      return "cache";
    case MemCategory::kOther:
      return "other";
    case MemCategory::kNumCategories:
      break;
  }
  return "invalid";
}

MemoryTracker& MemoryTracker::Global() {
  static MemoryTracker tracker;
  return tracker;
}

int64_t MemoryTracker::Total() const {
  int64_t sum = 0;
  for (const auto& c : counters_) sum += c.load(std::memory_order_relaxed);
  return sum;
}

void MemoryTracker::Reset() {
  for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
}

std::string MemoryTracker::Report() const {
  std::ostringstream os;
  os << "memory usage (bytes):\n";
  for (int i = 0; i < static_cast<int>(MemCategory::kNumCategories); ++i) {
    os << "  " << MemCategoryName(static_cast<MemCategory>(i)) << ": "
       << counters_[i].load(std::memory_order_relaxed) << "\n";
  }
  os << "  total: " << Total() << "\n";
  return os.str();
}

}  // namespace tu
