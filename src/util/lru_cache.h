// Sharded LRU cache used as the 1 GB data-segment cache for objects fetched
// from slow storage during queries (§4.1 "Configurations"). Capacity is
// charged per entry; eviction is strict LRU within each shard.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/memory_tracker.h"

namespace tu {

/// A single-shard LRU cache mapping string keys to shared_ptr<V> values.
template <typename V>
class LRUCacheShard {
 public:
  explicit LRUCacheShard(size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  ~LRUCacheShard() {
    MemoryTracker::Global().Sub(MemCategory::kCache,
                                static_cast<int64_t>(usage_));
  }

  void Insert(const std::string& key, std::shared_ptr<V> value, size_t charge) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      usage_ -= it->second->charge;
      MemoryTracker::Global().Sub(MemCategory::kCache,
                                  static_cast<int64_t>(it->second->charge));
      lru_.erase(it->second);
      map_.erase(it);
    }
    lru_.push_front(Entry{key, std::move(value), charge});
    map_[key] = lru_.begin();
    usage_ += charge;
    MemoryTracker::Global().Add(MemCategory::kCache,
                                static_cast<int64_t>(charge));
    EvictLocked();
  }

  std::shared_ptr<V> Lookup(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->value;
  }

  void Erase(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return;
    usage_ -= it->second->charge;
    MemoryTracker::Global().Sub(MemCategory::kCache,
                                static_cast<int64_t>(it->second->charge));
    lru_.erase(it->second);
    map_.erase(it);
  }

  size_t usage() const {
    std::lock_guard<std::mutex> lock(mu_);
    return usage_;
  }

  // Counter reads are lock-free (reports run concurrently with queries).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<V> value;
    size_t charge;
  };

  void EvictLocked() {
    while (usage_ > capacity_ && !lru_.empty()) {
      const Entry& victim = lru_.back();
      usage_ -= victim.charge;
      MemoryTracker::Global().Sub(MemCategory::kCache,
                                  static_cast<int64_t>(victim.charge));
      map_.erase(victim.key);
      lru_.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;
  std::unordered_map<std::string, typename std::list<Entry>::iterator> map_;
  size_t usage_ = 0;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

/// Sharded wrapper: hashes keys across kNumShards single-shard caches to
/// reduce lock contention.
template <typename V>
class LRUCache {
 public:
  static constexpr size_t kNumShards = 16;

  explicit LRUCache(size_t capacity_bytes) {
    for (size_t i = 0; i < kNumShards; ++i) {
      shards_.emplace_back(
          std::make_unique<LRUCacheShard<V>>(capacity_bytes / kNumShards));
    }
  }

  void Insert(const std::string& key, std::shared_ptr<V> value, size_t charge) {
    Shard(key).Insert(key, std::move(value), charge);
  }

  std::shared_ptr<V> Lookup(const std::string& key) {
    return Shard(key).Lookup(key);
  }

  void Erase(const std::string& key) { Shard(key).Erase(key); }

  size_t usage() const {
    size_t total = 0;
    for (const auto& s : shards_) total += s->usage();
    return total;
  }

  uint64_t hits() const {
    uint64_t total = 0;
    for (const auto& s : shards_) total += s->hits();
    return total;
  }

  uint64_t misses() const {
    uint64_t total = 0;
    for (const auto& s : shards_) total += s->misses();
    return total;
  }

  uint64_t evictions() const {
    uint64_t total = 0;
    for (const auto& s : shards_) total += s->evictions();
    return total;
  }

 private:
  LRUCacheShard<V>& Shard(const std::string& key) {
    return *shards_[std::hash<std::string>{}(key) % kNumShards];
  }

  std::vector<std::unique_ptr<LRUCacheShard<V>>> shards_;
};

}  // namespace tu
