// StripedMutexTable: a fixed, power-of-two table of mutexes indexed by an
// integer key. Gives fine-grained per-object locking (one lock per series/
// group head) without storing a mutex in every object: two keys contend
// only when they hash to the same stripe, which is rare with a table much
// larger than the writer-thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

namespace tu {

class StripedMutexTable {
 public:
  /// `stripes` is rounded up to a power of two (minimum 1).
  explicit StripedMutexTable(size_t stripes = 256) {
    size_t n = 1;
    while (n < stripes) n <<= 1;
    mask_ = n - 1;
    mutexes_ = std::make_unique<std::mutex[]>(n);
  }

  StripedMutexTable(const StripedMutexTable&) = delete;
  StripedMutexTable& operator=(const StripedMutexTable&) = delete;

  /// The stripe for `key`. The same key always maps to the same mutex;
  /// distinct keys may share one (callers must tolerate spurious
  /// serialization, never rely on distinctness).
  std::mutex& For(uint64_t key) const { return mutexes_[IndexFor(key)]; }

  /// The stripe index for `key` — lets callers keep side tables (e.g.
  /// per-stripe statistics updated under the stripe lock) aligned with
  /// the mutex that guards them.
  size_t IndexFor(uint64_t key) const { return Mix(key) & mask_; }

  std::mutex& MutexAt(size_t index) const { return mutexes_[index]; }

  size_t stripes() const { return mask_ + 1; }

 private:
  /// splitmix64 finalizer — spreads sequential ids across stripes.
  static uint64_t Mix(uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  size_t mask_ = 0;
  std::unique_ptr<std::mutex[]> mutexes_;
};

}  // namespace tu
