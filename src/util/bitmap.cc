#include "util/bitmap.h"

#include <bit>

namespace tu {

size_t Bitmap::FirstClear() const {
  const size_t nbytes = (nbits_ + 7) / 8;
  for (size_t b = 0; b < nbytes; ++b) {
    if (data_[b] != 0xff) {
      const size_t bit = b * 8 + std::countr_one(data_[b]);
      return bit < nbits_ ? bit : nbits_;
    }
  }
  return nbits_;
}

size_t Bitmap::CountSet() const {
  size_t count = 0;
  const size_t full_bytes = nbits_ / 8;
  for (size_t b = 0; b < full_bytes; ++b) count += std::popcount(data_[b]);
  for (size_t i = full_bytes * 8; i < nbits_; ++i) count += Test(i) ? 1 : 0;
  return count;
}

}  // namespace tu
