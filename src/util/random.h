// Deterministic pseudo-random generators for workload generation and tests.
#pragma once

#include <cstdint>

namespace tu {

/// xorshift128+ generator: fast, reproducible across platforms, good enough
/// for workload synthesis (not for cryptography).
class Random {
 public:
  explicit Random(uint64_t seed) {
    s0_ = seed * 0x9e3779b97f4a7c15ull + 1;
    s1_ = Mix(s0_);
    // Warm up so small seeds diverge.
    for (int i = 0; i < 8; ++i) Next64();
  }

  uint64_t Next64() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  uint32_t Next() { return static_cast<uint32_t>(Next64() >> 32); }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next64() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability 1/n.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Skewed distribution: picks base in [0, max_log] uniformly, then a value
  /// up to 2^base. Favors small numbers (LevelDB test idiom).
  uint64_t Skewed(int max_log) { return Uniform(1ull << Uniform(max_log + 1)); }

  /// Gaussian via Box–Muller (one value per call; slight waste, simple).
  double NextGaussian(double mean, double stddev);

 private:
  static uint64_t Mix(uint64_t z) {
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace tu
