#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <algorithm>
#include <cstring>
#include <filesystem>

namespace tu {

MmapFile::~MmapFile() {
  if (data_ != nullptr) munmap(data_, size_);
  if (fd_ >= 0) close(fd_);
}

Status MmapFile::Open(const std::string& path, size_t size,
                      std::unique_ptr<MmapFile>* out) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  if (ftruncate(fd, static_cast<off_t>(size)) != 0) {
    close(fd);
    return Status::IOError("ftruncate " + path + ": " + strerror(errno));
  }
  void* addr = mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (addr == MAP_FAILED) {
    close(fd);
    return Status::IOError("mmap " + path + ": " + strerror(errno));
  }
  out->reset(new MmapFile(path, fd, static_cast<char*>(addr), size));
  return Status::OK();
}

Status MmapFile::Sync() {
  if (msync(data_, size_, MS_SYNC) != 0) {
    return Status::IOError("msync " + path_ + ": " + strerror(errno));
  }
  return Status::OK();
}

void MmapFile::AdviseDontNeed() { madvise(data_, size_, MADV_DONTNEED); }

MmapFileArray::MmapFileArray(std::string dir, std::string name,
                             size_t file_size)
    : dir_(std::move(dir)), name_(std::move(name)), file_size_(file_size) {}

MmapFileArray::~MmapFileArray() = default;

Status MmapFileArray::Reserve(size_t bytes) {
  TU_RETURN_IF_ERROR(EnsureDir(dir_));
  while (capacity() < bytes) {
    char suffix[16];
    snprintf(suffix, sizeof(suffix), ".%04zu", files_.size());
    std::unique_ptr<MmapFile> f;
    TU_RETURN_IF_ERROR(MmapFile::Open(dir_ + "/" + name_ + suffix, file_size_, &f));
    files_.push_back(std::move(f));
  }
  return Status::OK();
}

char* MmapFileArray::At(size_t offset) {
  assert(offset < capacity());
  return files_[offset / file_size_]->data() + (offset % file_size_);
}

const char* MmapFileArray::At(size_t offset) const {
  assert(offset < capacity());
  return files_[offset / file_size_]->data() + (offset % file_size_);
}

void MmapFileArray::WriteBytes(size_t offset, const char* data, size_t len) {
  size_t written = 0;
  while (written < len) {
    const size_t off = offset + written;
    const size_t room = file_size_ - off % file_size_;
    const size_t n = std::min(len - written, room);
    memcpy(At(off), data + written, n);
    written += n;
  }
}

void MmapFileArray::ReadBytes(size_t offset, size_t len, char* out) const {
  size_t done = 0;
  while (done < len) {
    const size_t off = offset + done;
    const size_t room = file_size_ - off % file_size_;
    const size_t n = std::min(len - done, room);
    memcpy(out + done, At(off), n);
    done += n;
  }
}

Status MmapFileArray::Sync() {
  for (auto& f : files_) TU_RETURN_IF_ERROR(f->Sync());
  return Status::OK();
}

void MmapFileArray::AdviseDontNeed() {
  for (auto& f : files_) f->AdviseDontNeed();
}

MmapSlotArray::MmapSlotArray(std::string dir, std::string name,
                             size_t slot_size, size_t slots_per_file)
    : slot_size_(slot_size),
      slots_per_file_(slots_per_file),
      array_(std::move(dir), std::move(name), slot_size * slots_per_file) {}

Status MmapSlotArray::ReserveSlots(size_t n) {
  const size_t files_needed = (n + slots_per_file_ - 1) / slots_per_file_;
  return array_.Reserve(files_needed * array_.file_size());
}

char* MmapSlotArray::Slot(size_t i) {
  const size_t file = i / slots_per_file_;
  const size_t index_in_file = i % slots_per_file_;
  return array_.At(file * array_.file_size() + index_in_file * slot_size_);
}

const char* MmapSlotArray::Slot(size_t i) const {
  return const_cast<MmapSlotArray*>(this)->Slot(i);
}

Status EnsureDir(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) return Status::IOError("mkdir " + path + ": " + ec.message());
  return Status::OK();
}

Status RemoveDirRecursive(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove_all(path, ec);
  if (ec) return Status::IOError("rm -r " + path + ": " + ec.message());
  return Status::OK();
}

}  // namespace tu
