// Histogram: latency statistics for the benchmark harness (avg / percentile
// reporting matching the paper's query-latency figures).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tu {

/// Records double-valued observations (typically microseconds) and reports
/// count/avg/min/max/percentiles. Not thread-safe; one per measuring thread.
class Histogram {
 public:
  void Add(double value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return static_cast<uint64_t>(values_.size()); }
  double Average() const;
  double Min() const;
  double Max() const;
  /// p in [0, 100]; nearest-rank percentile.
  double Percentile(double p) const;

  /// One-line summary: "count=N avg=X p50=Y p99=Z max=W".
  std::string Summary() const;

 private:
  void SortIfNeeded() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
  double sum_ = 0;
};

}  // namespace tu
