#include "util/crc32c.h"

#include <array>

namespace tu::crc32c {

namespace {

// Slice-by-8 CRC32C (Castagnoli polynomial 0x82f63b78, reflected): eight
// lookup tables let the loop fold one 64-bit word per iteration instead of
// one byte. Table 0 is the classic byte-at-a-time table; table k maps a
// byte to its CRC contribution k positions further along, so the eight
// lookups of one word are independent and the wire format is bit-for-bit
// identical to the byte-at-a-time implementation (pinned by util_test's
// known-vector cases).
constexpr std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0);
    }
    tables[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tables[0][i];
    for (size_t k = 1; k < 8; ++k) {
      crc = tables[0][crc & 0xff] ^ (crc >> 8);
      tables[k][i] = crc;
    }
  }
  return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kTables = MakeTables();

// Endian-neutral 32-bit little-endian load; compiles to a single mov on
// little-endian targets.
inline uint32_t LoadLE32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  uint32_t crc = init_crc ^ 0xffffffffu;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data);

  while (n >= 8) {
    const uint32_t lo = LoadLE32(p) ^ crc;
    const uint32_t hi = LoadLE32(p + 4);
    crc = kTables[7][lo & 0xff] ^ kTables[6][(lo >> 8) & 0xff] ^
          kTables[5][(lo >> 16) & 0xff] ^ kTables[4][lo >> 24] ^
          kTables[3][hi & 0xff] ^ kTables[2][(hi >> 8) & 0xff] ^
          kTables[1][(hi >> 16) & 0xff] ^ kTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = kTables[0][(crc ^ *p) & 0xff] ^ (crc >> 8);
    ++p;
    --n;
  }
  return crc ^ 0xffffffffu;
}

}  // namespace tu::crc32c
