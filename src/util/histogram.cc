#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace tu {

void Histogram::Add(double value) {
  values_.push_back(value);
  sum_ += value;
  sorted_ = false;
}

void Histogram::Merge(const Histogram& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  sum_ += other.sum_;
  sorted_ = false;
}

void Histogram::Clear() {
  values_.clear();
  sum_ = 0;
  sorted_ = true;
}

double Histogram::Average() const {
  return values_.empty() ? 0.0 : sum_ / static_cast<double>(values_.size());
}

double Histogram::Min() const {
  SortIfNeeded();
  return values_.empty() ? 0.0 : values_.front();
}

double Histogram::Max() const {
  SortIfNeeded();
  return values_.empty() ? 0.0 : values_.back();
}

double Histogram::Percentile(double p) const {
  if (values_.empty()) return 0.0;
  SortIfNeeded();
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "count=" << count() << " avg=" << Average() << " p50=" << Percentile(50)
     << " p99=" << Percentile(99) << " max=" << Max();
  return os.str();
}

void Histogram::SortIfNeeded() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

}  // namespace tu
