// Arena: bump allocator for memtable nodes and keys (LevelDB idiom).
// All memory is released at once when the arena is destroyed.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace tu {

class Arena {
 public:
  Arena() = default;
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns a pointer to `bytes` bytes of uninitialized memory.
  char* Allocate(size_t bytes);

  /// Like Allocate, but aligned for any scalar type (8 bytes).
  char* AllocateAligned(size_t bytes);

  /// Total memory footprint of the arena (approximate, thread-safe read).
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kBlockSize = 4096;

  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  char* alloc_ptr_ = nullptr;
  size_t alloc_bytes_remaining_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_{0};
};

inline char* Arena::Allocate(size_t bytes) {
  assert(bytes > 0);
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

}  // namespace tu
