// Closed-interval merge helper used by the partial-result query path: the
// per-table missing spans collected while a slow-tier outage is in effect
// overlap heavily (one span per unreachable table per series), and the
// query surface promises a minimal sorted list.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace tu::util {

/// A closed timestamp interval [first, second] in ms, first <= second.
using TimeInterval = std::pair<int64_t, int64_t>;

/// Sorts `*intervals` and coalesces overlapping or adjacent entries
/// (adjacent = next.first <= cur.second + 1, since intervals are closed
/// over integer milliseconds). Empty/inverted entries are dropped.
void MergeIntervals(std::vector<TimeInterval>* intervals);

/// True if ts lies inside one of the (merged or unmerged) intervals.
bool IntervalsContain(const std::vector<TimeInterval>& intervals, int64_t ts);

}  // namespace tu::util
