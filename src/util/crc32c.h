// CRC32C (Castagnoli) checksums for SSTable block and log-record integrity.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tu::crc32c {

/// Returns the CRC32C of data[0, n), extending `init_crc`.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

/// Masks a CRC before storing it alongside the data it covers (the
/// LevelDB trick: CRCs of CRCs are pathological otherwise).
inline uint32_t Mask(uint32_t crc) { return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul; }

inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - 0xa282ead8ul;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace tu::crc32c
