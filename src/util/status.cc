#include "util/status.h"

namespace tu {

std::string Status::ToString() const {
  const char* name = "Unknown";
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kNotFound:
      name = "NotFound";
      break;
    case Code::kCorruption:
      name = "Corruption";
      break;
    case Code::kNotSupported:
      name = "NotSupported";
      break;
    case Code::kInvalidArgument:
      name = "InvalidArgument";
      break;
    case Code::kIOError:
      name = "IOError";
      break;
    case Code::kBusy:
      name = "Busy";
      break;
    case Code::kOutOfSpace:
      name = "OutOfSpace";
      break;
    case Code::kUnavailable:
      name = "Unavailable";
      break;
    case Code::kResourceExhausted:
      name = "ResourceExhausted";
      break;
  }
  std::string out(name);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace tu
