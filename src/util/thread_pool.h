// ThreadPool: fixed-size worker pool for background LSM work (immutable
// memtable flushes, compactions, retention/log-purge workers).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tu {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `work` for execution on a worker thread. After Shutdown()
  /// (or during destruction) the work is silently dropped instead of
  /// touching a dead queue.
  void Schedule(std::function<void()> work);

  /// Blocks until the queue is empty and all workers are idle.
  void WaitIdle();

  /// Drains the queue, joins all workers, and marks the pool dead.
  /// Idempotent; called by the destructor. Subsequent Schedule() calls
  /// are no-ops.
  void Shutdown();

  size_t pending() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace tu
