// Binary encoding primitives: fixed-width little-endian integers for block
// internals, big-endian for sortable LSM keys (§3.3 key format), and LEB128
// varints for compact lengths.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace tu {

// ---------- Fixed-width little-endian (block internals) ----------

inline void EncodeFixed32(char* dst, uint32_t value) {
  memcpy(dst, &value, sizeof(value));  // host is little-endian (x86/ARM LE)
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t v;
  memcpy(&v, ptr, sizeof(v));
  return v;
}

inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t v;
  memcpy(&v, ptr, sizeof(v));
  return v;
}

inline void PutFixed32(std::string* dst, uint32_t value) {
  char buf[sizeof(value)];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}

inline void PutFixed64(std::string* dst, uint64_t value) {
  char buf[sizeof(value)];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

// ---------- Fixed-width big-endian (sortable key encoding, §3.3) ----------

/// Encodes `value` big-endian so that memcmp order equals numeric order.
inline void EncodeBigEndian64(char* dst, uint64_t value) {
  for (int i = 7; i >= 0; --i) {
    dst[i] = static_cast<char>(value & 0xff);
    value >>= 8;
  }
}

inline uint64_t DecodeBigEndian64(const char* ptr) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<uint8_t>(ptr[i]);
  }
  return v;
}

inline void PutBigEndian64(std::string* dst, uint64_t value) {
  char buf[8];
  EncodeBigEndian64(buf, value);
  dst->append(buf, 8);
}

/// Encodes a signed timestamp big-endian with the sign bit flipped so the
/// bytewise order matches signed numeric order (supports pre-epoch data).
inline void PutOrderedInt64(std::string* dst, int64_t value) {
  PutBigEndian64(dst, static_cast<uint64_t>(value) ^ (1ull << 63));
}

inline int64_t DecodeOrderedInt64(const char* ptr) {
  return static_cast<int64_t>(DecodeBigEndian64(ptr) ^ (1ull << 63));
}

// ---------- LEB128 varints ----------

char* EncodeVarint32(char* dst, uint32_t v);
char* EncodeVarint64(char* dst, uint64_t v);
void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);

const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

/// Parses a varint32 from the front of `*input`, advancing it. Returns false
/// on truncated input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);

/// Appends varint length + bytes.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);
/// Parses a length-prefixed slice from the front of `*input`, advancing it.
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

int VarintLength(uint64_t v);

}  // namespace tu
