// MemoryTracker: per-category byte accounting wired through every data
// structure. Substitutes for RSS/cgroup measurement in the paper's memory
// experiments (Figs. 3, 13d, 16): category-accurate byte counts reproduce
// the relative comparisons the paper reports.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace tu {

/// Memory categories matching the paper's breakdown (§2.4: inverted index
/// 51%, block metadata 34%, data samples 15% for Prometheus tsdb).
enum class MemCategory : int {
  kInvertedIndex = 0,  // postings lists, trie / nested hash tables
  kTags,               // symbol tables, per-series tag storage
  kSamples,            // open chunks / batched data samples
  kBlockMeta,          // on-disk partition metadata pinned in memory
  kMemtable,           // LSM memtables + immutable queue
  kCache,              // block/LRU caches
  kOther,
  kNumCategories,
};

const char* MemCategoryName(MemCategory c);

/// Process-wide byte accounting. All methods are thread-safe and lock-free.
class MemoryTracker {
 public:
  static MemoryTracker& Global();

  void Add(MemCategory c, int64_t bytes) {
    counters_[static_cast<int>(c)].fetch_add(bytes, std::memory_order_relaxed);
  }
  void Sub(MemCategory c, int64_t bytes) { Add(c, -bytes); }

  int64_t Get(MemCategory c) const {
    return counters_[static_cast<int>(c)].load(std::memory_order_relaxed);
  }

  int64_t Total() const;

  /// Zeroes all counters (bench/test setup).
  void Reset();

  /// Multi-line human-readable breakdown.
  std::string Report() const;

 private:
  std::array<std::atomic<int64_t>,
             static_cast<int>(MemCategory::kNumCategories)>
      counters_{};
};

/// RAII registration of a fixed-size allocation against a category.
class ScopedMemReservation {
 public:
  ScopedMemReservation(MemCategory c, int64_t bytes) : c_(c), bytes_(bytes) {
    MemoryTracker::Global().Add(c_, bytes_);
  }
  ~ScopedMemReservation() { MemoryTracker::Global().Sub(c_, bytes_); }

  ScopedMemReservation(const ScopedMemReservation&) = delete;
  ScopedMemReservation& operator=(const ScopedMemReservation&) = delete;

 private:
  MemCategory c_;
  int64_t bytes_;
};

}  // namespace tu
