// MmapFile: a file-backed memory mapping that the OS can swap out under
// memory pressure — the mechanism behind TimeUnion's memory-efficient index
// and data-sample storage (§3.2). MmapFileArray chains fixed-size MmapFiles
// into a growable address space ("dynamic mmap file arrays" in the paper).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace tu {

/// A single file mapped read-write into memory. Created at a fixed size;
/// flushed with msync; unmapped + closed on destruction.
class MmapFile {
 public:
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Creates (or opens, if it exists) `path` with exactly `size` bytes and
  /// maps it read-write. A fresh file is zero-filled by ftruncate.
  static Status Open(const std::string& path, size_t size,
                     std::unique_ptr<MmapFile>* out);

  char* data() { return data_; }
  const char* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// msync(MS_SYNC) the whole mapping.
  Status Sync();

  /// Advises the kernel the mapping won't be needed soon (lets it reclaim
  /// the pages early — the paper's "positively swapped out" behaviour).
  void AdviseDontNeed();

 private:
  MmapFile(std::string path, int fd, char* data, size_t size)
      : path_(std::move(path)), fd_(fd), data_(data), size_(size) {}

  std::string path_;
  int fd_;
  char* data_;
  size_t size_;
};

/// A logically contiguous, dynamically growable byte array made of a chain
/// of fixed-size mmap files: file i holds bytes [i*file_size, (i+1)*file_size).
/// New files are appended on demand; existing addresses stay stable.
class MmapFileArray {
 public:
  /// Files are created as `dir`/`name`.NNNN, each `file_size` bytes.
  MmapFileArray(std::string dir, std::string name, size_t file_size);
  ~MmapFileArray();

  MmapFileArray(const MmapFileArray&) = delete;
  MmapFileArray& operator=(const MmapFileArray&) = delete;

  /// Ensures capacity for at least `bytes` bytes, mapping new files as
  /// needed.
  Status Reserve(size_t bytes);

  /// Pointer to byte `offset`. The caller must only touch bytes inside the
  /// same underlying file (i.e. [offset, offset + n) must not cross a
  /// file_size boundary); SlotSpan() below gives safe fixed-slot access.
  char* At(size_t offset);
  const char* At(size_t offset) const;

  /// Copies `len` bytes into the array at `offset`, handling file-boundary
  /// crossings. Capacity must already cover [offset, offset+len).
  void WriteBytes(size_t offset, const char* data, size_t len);

  /// Copies `len` bytes out of the array at `offset`.
  void ReadBytes(size_t offset, size_t len, char* out) const;

  size_t capacity() const { return files_.size() * file_size_; }
  size_t file_size() const { return file_size_; }
  size_t num_files() const { return files_.size(); }

  Status Sync();
  void AdviseDontNeed();

 private:
  std::string dir_;
  std::string name_;
  size_t file_size_;
  std::vector<std::unique_ptr<MmapFile>> files_;
};

/// Typed fixed-slot view over an MmapFileArray: slot i is `slot_size` bytes,
/// and slots never cross file boundaries (slots_per_file = file_size /
/// slot_size; the file tail remainder is unused).
class MmapSlotArray {
 public:
  MmapSlotArray(std::string dir, std::string name, size_t slot_size,
                size_t slots_per_file);

  /// Ensures slot `i` is mapped.
  Status ReserveSlots(size_t n);

  char* Slot(size_t i);
  const char* Slot(size_t i) const;

  size_t slot_size() const { return slot_size_; }
  size_t capacity_slots() const {
    return array_.num_files() * slots_per_file_;
  }

  Status Sync() { return array_.Sync(); }
  void AdviseDontNeed() { array_.AdviseDontNeed(); }

 private:
  size_t slot_size_;
  size_t slots_per_file_;
  MmapFileArray array_;
};

/// Creates directory `path` (and parents). OK if it already exists.
Status EnsureDir(const std::string& path);

/// Recursively removes `path` if it exists (test/bench cleanup).
Status RemoveDirRecursive(const std::string& path);

}  // namespace tu
