#include "util/random.h"

#include <cmath>

namespace tu {

double Random::NextGaussian(double mean, double stddev) {
  // Box–Muller transform; u1 is kept away from 0 so log() is finite.
  double u1 = NextDouble();
  if (u1 < 1e-12) u1 = 1e-12;
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

}  // namespace tu
