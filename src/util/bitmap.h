// Bitmap: fixed-capacity bit set used as the allocation header of mmap chunk
// arrays (Fig. 9) and as the NULL mask of group chunk columns.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace tu {

/// A growable bit set with first-clear-bit search. Storage can either be
/// owned (std::vector) or borrowed (a region inside an mmap'ed file header).
class Bitmap {
 public:
  /// Owned storage with `nbits` capacity, all clear.
  explicit Bitmap(size_t nbits)
      : owned_((nbits + 7) / 8, 0), data_(owned_.data()), nbits_(nbits) {}

  /// Borrowed storage: `data` must hold at least (nbits+7)/8 bytes and
  /// outlive the Bitmap.
  Bitmap(uint8_t* data, size_t nbits) : data_(data), nbits_(nbits) {}

  size_t size() const { return nbits_; }

  bool Test(size_t i) const {
    assert(i < nbits_);
    return (data_[i >> 3] >> (i & 7)) & 1;
  }

  void Set(size_t i) {
    assert(i < nbits_);
    data_[i >> 3] |= static_cast<uint8_t>(1u << (i & 7));
  }

  void Clear(size_t i) {
    assert(i < nbits_);
    data_[i >> 3] &= static_cast<uint8_t>(~(1u << (i & 7)));
  }

  void ClearAll() { memset(data_, 0, (nbits_ + 7) / 8); }

  /// Index of the first clear bit, or size() if the bitmap is full.
  size_t FirstClear() const;

  /// Number of set bits.
  size_t CountSet() const;

 private:
  std::vector<uint8_t> owned_;
  uint8_t* data_;
  size_t nbits_;
};

}  // namespace tu
