#include "util/thread_pool.h"

namespace tu {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::Schedule(std::function<void()> work) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;  // dropped: no workers remain to run it
    queue_.push_back(std::move(work));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + active_;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (shutdown_ && queue_.empty()) return;
    auto work = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    work();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace tu
