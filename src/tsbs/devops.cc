#include "tsbs/devops.h"

#include <cmath>

#include "query/aggregate.h"
#include "util/random.h"

namespace tu::tsbs {

namespace {

struct Family {
  const char* measurement;
  int num_fields;
  const char* field_prefix;
};

// Nine measurement families totalling 101 fields per host (TSBS DevOps).
constexpr Family kFamilies[] = {
    {"cpu", 10, "usage"},      {"diskio", 7, "io"},
    {"disk", 7, "fs"},         {"kernel", 5, "kern"},
    {"mem", 8, "vm"},          {"net", 7, "if"},
    {"nginx", 7, "req"},       {"postgresl", 13, "pg"},
    {"redis", 37, "rd"},
};

constexpr const char* kHostTagNames[] = {
    "region",          "datacenter", "rack",
    "os",              "arch",       "team",
    "service",         "service_version",
    "service_environment", "cluster",
    "zone",            "tenant",     "pool",
    "tier",            "release",    "build",
    "role",            "shard",      "generation",
};

uint64_t MixHash(uint64_t a, uint64_t b) {
  uint64_t x = a * 0x9e3779b97f4a7c15ull + b;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  return x;
}

}  // namespace

DevOpsGenerator::DevOpsGenerator(DevOpsOptions options)
    : options_(options) {
  measurements_.reserve(kSeriesPerHost);
  fields_.reserve(kSeriesPerHost);
  for (const Family& family : kFamilies) {
    for (int f = 0; f < family.num_fields; ++f) {
      measurements_.push_back(family.measurement);
      fields_.push_back(std::string(family.measurement) + "_" +
                        family.field_prefix + "_" + std::to_string(f));
    }
  }
}

std::string DevOpsGenerator::HostName(uint64_t host) const {
  return "host_" + std::to_string(host);
}

index::Labels DevOpsGenerator::HostTags(uint64_t host) const {
  index::Labels tags;
  tags.push_back({"hostname", HostName(host)});
  const int extra = std::min<int>(
      options_.num_host_tags - 1,
      static_cast<int>(sizeof(kHostTagNames) / sizeof(kHostTagNames[0])));
  for (int i = 0; i < extra; ++i) {
    // Low-cardinality host attributes (TSBS picks from small pools).
    const uint64_t v = MixHash(options_.seed + i, host) % 8;
    tags.push_back({kHostTagNames[i],
                    std::string(kHostTagNames[i]) + "_" + std::to_string(v)});
  }
  index::SortLabels(&tags);
  return tags;
}

index::Labels DevOpsGenerator::UniqueTags(int series_idx) const {
  index::Labels tags;
  tags.push_back({"measurement", measurements_[series_idx]});
  tags.push_back({"fieldname", fields_[series_idx]});
  index::SortLabels(&tags);
  return tags;
}

index::Labels DevOpsGenerator::SeriesLabels(uint64_t host,
                                            int series_idx) const {
  index::Labels labels = HostTags(host);
  const index::Labels unique = UniqueTags(series_idx);
  labels.insert(labels.end(), unique.begin(), unique.end());
  index::SortLabels(&labels);
  return labels;
}

double DevOpsGenerator::Value(uint64_t host, int series_idx,
                              int64_t ts) const {
  // Daily sine + per-series phase + small integer jitter: compresses like
  // real monitoring data and is deterministic (reproducible benches).
  const double phase =
      static_cast<double>(MixHash(host, series_idx) % 628) / 100.0;
  const double day_fraction =
      static_cast<double>(ts % (24LL * 3600 * 1000)) / (24.0 * 3600 * 1000);
  const double wave = 50.0 + 35.0 * std::sin(2 * M_PI * day_fraction + phase);
  const uint64_t h = MixHash(MixHash(host, series_idx),
                             static_cast<uint64_t>(ts));
  const double jitter = static_cast<double>(h % 20);
  const double frac = static_cast<double>((h >> 8) % 100) / 100.0;
  return std::floor(wave) + jitter + frac;
}

const std::string& DevOpsGenerator::FieldName(int series_idx) const {
  return fields_[series_idx];
}

const std::string& DevOpsGenerator::Measurement(int series_idx) const {
  return measurements_[series_idx];
}

int DevOpsGenerator::CpuSeriesIndex(int n) const { return n % 10; }

std::vector<QueryPattern> StandardPatterns() {
  return {
      {"1-1-1", 1, 1, 1, false},   {"1-1-24", 1, 1, 24, false},
      {"1-8-1", 1, 8, 1, false},   {"5-1-1", 5, 1, 1, false},
      {"5-1-24", 5, 1, 24, false}, {"5-8-1", 5, 8, 1, false},
      {"lastpoint", 1, 1, 0, true},
  };
}

std::vector<QueryPattern> BigPatterns() {
  auto patterns = StandardPatterns();
  patterns.push_back({"1-1-all", 1, 1, -1, false});
  patterns.push_back({"5-1-all", 5, 1, -1, false});
  return patterns;
}

std::vector<index::TagMatcher> PatternSelectors(const QueryPattern& pattern,
                                                const DevOpsGenerator& gen,
                                                uint64_t seed) {
  Random rng(seed);
  std::vector<index::TagMatcher> matchers;

  // Hosts: exact match for one, regex union for several.
  if (pattern.num_hosts == 1) {
    matchers.push_back(index::TagMatcher::Equal(
        "hostname", gen.HostName(rng.Uniform(gen.num_hosts()))));
  } else {
    std::string pat = "(";
    for (int i = 0; i < pattern.num_hosts; ++i) {
      if (i > 0) pat += "|";
      pat += gen.HostName((rng.Uniform(gen.num_hosts()) + i) %
                          gen.num_hosts());
    }
    pat += ")";
    matchers.push_back(index::TagMatcher::Regex("hostname", pat));
  }

  // Metrics: cpu fields, per TSBS.
  if (pattern.num_metrics == 1) {
    matchers.push_back(index::TagMatcher::Equal(
        "fieldname", gen.FieldName(gen.CpuSeriesIndex(
                         static_cast<int>(rng.Uniform(10))))));
  } else {
    std::string pat = "(";
    for (int i = 0; i < pattern.num_metrics; ++i) {
      if (i > 0) pat += "|";
      pat += gen.FieldName(gen.CpuSeriesIndex(i));
    }
    pat += ")";
    matchers.push_back(index::TagMatcher::Regex("fieldname", pat));
  }
  return matchers;
}

std::vector<AggPoint> AggregateMax(const std::vector<compress::Sample>& samples,
                                   int64_t window_ms) {
  // Deduplicated onto the shared continuous-aggregate kernels so the TSBS
  // client-side post-processing folds samples exactly like AggregateQuery.
  std::vector<int64_t> timestamps;
  std::vector<double> values;
  timestamps.reserve(samples.size());
  values.reserve(samples.size());
  for (const compress::Sample& s : samples) {
    timestamps.push_back(s.timestamp);
    values.push_back(s.value);
  }
  std::vector<compress::RollupBucket> buckets;
  query::AccumulateIntoBuckets(timestamps.data(), values.data(),
                               timestamps.size(), window_ms, &buckets);
  const std::vector<query::AggPoint> folded =
      query::FoldBuckets(buckets, window_ms, query::AggFn::kMax);
  std::vector<AggPoint> out;
  out.reserve(folded.size());
  for (const query::AggPoint& p : folded) {
    out.push_back(AggPoint{p.window_start, p.value});
  }
  return out;
}

}  // namespace tu::tsbs
