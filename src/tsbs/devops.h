// TSBS DevOps workload (§4.2/§4.3): deterministic reimplementation of the
// Time Series Benchmark Suite's DevOps data set — each simulated host
// exposes 101 timeseries across nine measurement families (cpu, diskio,
// disk, kernel, mem, net, nginx, postgres, redis), sharing the host tag
// set; per-series unique tags are the measurement and field names. This is
// the paper's grouping sweet spot: Sg = 101, Tg = 1 (hostname), Tu ≈ 118.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compress/chunk.h"
#include "index/inverted_index.h"
#include "index/labels.h"

namespace tu::tsbs {

struct DevOpsOptions {
  uint64_t num_hosts = 10;
  int64_t start_ts = 0;
  /// Sample interval (paper: 60 s end-to-end, 30 s storage-engine, 10 s
  /// big-DevOps).
  int64_t interval_ms = 30'000;
  /// Total time span (paper: 24 h; 1-7 days for big DevOps).
  int64_t duration_ms = 24LL * 60 * 60 * 1000;
  /// Extra per-host tags beyond hostname (TSBS has 10 host tags; Fig. 3
  /// uses 20 tags/series, Fig. 4 uses 5).
  int num_host_tags = 10;
  uint64_t seed = 42;
};

class DevOpsGenerator {
 public:
  static constexpr int kSeriesPerHost = 101;

  explicit DevOpsGenerator(DevOpsOptions options);

  uint64_t num_hosts() const { return options_.num_hosts; }
  uint64_t num_series() const { return options_.num_hosts * kSeriesPerHost; }
  int64_t start_ts() const { return options_.start_ts; }
  int64_t end_ts() const { return options_.start_ts + options_.duration_ms; }
  int64_t interval_ms() const { return options_.interval_ms; }
  uint64_t num_steps() const {
    return static_cast<uint64_t>(options_.duration_ms / options_.interval_ms);
  }

  /// Host tag set (the group tags; hostname is the grouping key).
  index::Labels HostTags(uint64_t host) const;

  /// Per-series unique tags: measurement + field name.
  index::Labels UniqueTags(int series_idx) const;

  /// Full identifier = host tags + unique tags (sorted).
  index::Labels SeriesLabels(uint64_t host, int series_idx) const;

  /// Deterministic monitoring-style value: smooth daily wave + small
  /// integer jitter (limited precision, like real metrics).
  double Value(uint64_t host, int series_idx, int64_t ts) const;

  std::string HostName(uint64_t host) const;
  /// Field name of a series (e.g. "cpu_usage_user").
  const std::string& FieldName(int series_idx) const;
  const std::string& Measurement(int series_idx) const;
  /// Index of the n-th cpu metric (TSBS queries target cpu fields).
  int CpuSeriesIndex(int n) const;

 private:
  DevOpsOptions options_;
  std::vector<std::string> measurements_;  // per series
  std::vector<std::string> fields_;        // per series
};

// ---------------------------------------------------------------------------
// Table 2 query patterns.
// ---------------------------------------------------------------------------

struct QueryPattern {
  std::string name;   // "5-1-24", "lastpoint", "1-1-all", ...
  int num_metrics = 1;
  int num_hosts = 1;
  /// Query span in hours; -1 = whole data span ("all"); 0 = lastpoint.
  int hours = 1;
  bool lastpoint = false;

  /// Aggregation window (TSBS: MAX every 5 minutes).
  static constexpr int64_t kAggWindowMs = 5 * 60 * 1000;
};

/// The seven patterns of Table 2.
std::vector<QueryPattern> StandardPatterns();

/// Fig. 15's extra whole-span patterns (1-1-all, 5-1-all).
std::vector<QueryPattern> BigPatterns();

/// Builds the tag selectors of one pattern instance: `num_metrics` cpu
/// fields and `num_hosts` hosts chosen deterministically from `seed`.
std::vector<index::TagMatcher> PatternSelectors(const QueryPattern& pattern,
                                                const DevOpsGenerator& gen,
                                                uint64_t seed);

/// Client-side MAX aggregation every kAggWindowMs over raw samples (the
/// same post-processing is applied to every engine, so comparisons are
/// fair).
struct AggPoint {
  int64_t window_start;
  double max_value;
};
std::vector<AggPoint> AggregateMax(const std::vector<compress::Sample>& samples,
                                   int64_t window_ms);

}  // namespace tu::tsbs
