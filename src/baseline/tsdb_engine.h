// TsdbEngine: C++ reimplementation of the Prometheus tsdb storage-engine
// architecture (§2.2/Fig. 2), extended with cloud storage support exactly
// the way the paper's "tsdb" baseline is:
//   - head block: all incoming samples batched in memory, 120-sample
//     chunks, with an inverted index built on the fly from NESTED HASH
//     TABLES (the §2.4 memory culprit);
//   - every block_range (2 h) the head is cut into a self-contained
//     persistent block (chunk blob + index blob) uploaded to the slow
//     object tier; block metadata (tag pairs, symbols, chunk refs) stays
//     pinned in memory for query acceleration (the kBlockMeta 34%);
//   - adjacent blocks are merged when enough accumulate (block compaction);
//   - out-of-order samples are rejected ("Prometheus does not even support
//     this", §2.2).
//
// The optional LevelDB sample storage (tsdb-LDB, §4.1 baseline (a)) stores
// chunk payloads in a classic leveled LSM whose SSTables live on S3
// instead of per-block chunk blobs.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/tiered_env.h"
#include "compress/chunk.h"
#include "index/inverted_index.h"  // TagMatcher
#include "index/labels.h"
#include "lsm/leveled_lsm.h"
#include "util/lru_cache.h"

namespace tu::baseline {

struct TsdbOptions {
  std::string workspace;
  cloud::TieredEnvOptions env_options = cloud::TieredEnvOptions::Instant();
  /// Head span before a block is cut (Prometheus: 2 hours).
  int64_t block_range_ms = 2LL * 60 * 60 * 1000;
  /// Samples per chunk (Prometheus: 120).
  uint32_t samples_per_chunk = 120;
  /// Merge this many adjacent blocks into one (Prometheus compaction).
  int compact_block_count = 3;
  /// Store persistent blocks on the slow object tier (cloud support);
  /// false = fast tier only (Fig. 17 EBS-only mode).
  bool blocks_on_slow = true;
  /// tsdb-LDB: store chunk payloads in a leveled LSM on the slow tier.
  bool use_leveldb_samples = false;
  lsm::LeveledLsmOptions leveled;
  size_t segment_cache_bytes = 64 << 20;
};

struct TsdbStats {
  std::atomic<uint64_t> blocks_cut{0};
  std::atomic<uint64_t> compactions{0};
  std::atomic<uint64_t> compaction_us{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> rejected_out_of_order{0};
};

/// Query result shape shared with TimeUnionDB.
struct TsdbSeriesResult {
  index::Labels labels;
  std::vector<compress::Sample> samples;
};

class TsdbEngine {
 public:
  static Status Open(TsdbOptions options, std::unique_ptr<TsdbEngine>* out);
  ~TsdbEngine();

  /// Registers a series without samples (Fig. 3a index-only case).
  Status Register(const index::Labels& labels, uint64_t* ref);

  Status Insert(const index::Labels& labels, int64_t ts, double value,
                uint64_t* ref);
  Status InsertFast(uint64_t ref, int64_t ts, double value);

  Status Query(const std::vector<index::TagMatcher>& matchers, int64_t t0,
               int64_t t1, std::vector<TsdbSeriesResult>* out);

  /// Cuts the head into a block and runs pending compactions.
  Status Flush();

  const TsdbStats& stats() const { return stats_; }
  /// Compaction statistics of the embedded sample LSM (tsdb-LDB mode);
  /// nullptr otherwise.
  const lsm::CompactionStats* sample_lsm_stats() const {
    return sample_lsm_ ? &sample_lsm_->stats() : nullptr;
  }
  cloud::TieredEnv& env() { return *env_; }
  uint64_t NumSeries() const { return series_.size(); }
  size_t NumBlocks() const { return blocks_.size(); }
  /// Total persisted index bytes (Table 3 "Index" row).
  uint64_t PersistedIndexBytes() const { return persisted_index_bytes_; }
  /// Total persisted chunk bytes (Table 3 "Data" row).
  uint64_t PersistedDataBytes() const { return persisted_data_bytes_; }

 private:
  struct HeadSeries {
    uint64_t id = 0;
    index::Labels labels;
    std::vector<compress::Sample> buffer;   // open chunk, raw samples
    std::vector<std::string> closed;        // compressed chunks (in RAM)
    std::vector<int64_t> closed_start;
    int64_t last_ts = INT64_MIN;
  };

  /// In-memory metadata of a persistent block — deliberately pinned, like
  /// Prometheus loading block indexes for query acceleration.
  struct ChunkRef {
    uint64_t series_ord = 0;
    uint64_t offset = 0;   // into the chunk blob (or LSM key ts)
    uint32_t length = 0;
    int64_t min_ts = 0;
    int64_t max_ts = 0;
  };
  struct BlockMeta {
    uint64_t block_id = 0;
    int64_t min_ts = 0;
    int64_t max_ts = 0;
    std::vector<index::Labels> series_labels;            // by ord
    std::vector<uint64_t> series_ids;                    // global ids by ord
    std::map<std::string, index::Postings> postings;     // tagpair -> ords
    std::vector<ChunkRef> chunks;
    uint64_t chunks_bytes = 0;
    uint64_t index_bytes = 0;
    int64_t tracked_bytes = 0;  // kBlockMeta accounting
  };

  explicit TsdbEngine(TsdbOptions options);
  Status Init();

  Status AppendLocked(HeadSeries* series, int64_t ts, double value);
  Status CloseOpenChunk(HeadSeries* series);
  Status CutBlockLocked();
  Status MaybeCompactLocked();
  Status CompactBlocksLocked(size_t first, size_t count);
  Status WriteBlock(
      const std::vector<std::pair<uint64_t, std::vector<std::pair<int64_t, std::string>>>>&
          series_chunks,
      BlockMeta* meta);

  std::string ChunksName(uint64_t block_id) const;
  Status ReadChunk(const BlockMeta& meta, const ChunkRef& ref,
                   std::string* out);

  void TrackIndexBytes(int64_t delta);
  void TrackBlockMeta(BlockMeta* meta);

  TsdbOptions options_;
  std::unique_ptr<cloud::TieredEnv> env_;
  std::unique_ptr<lsm::BlockCache> lsm_cache_;
  std::unique_ptr<lsm::LeveledLsm> sample_lsm_;  // tsdb-LDB mode
  std::unique_ptr<LRUCache<std::string>> segment_cache_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, uint64_t> series_by_key_;
  std::unordered_map<uint64_t, HeadSeries> series_;
  // The §2.4 nested hash table index: tag name -> value -> series ids.
  std::unordered_map<std::string,
                     std::unordered_map<std::string, index::Postings>>
      head_index_;
  std::vector<BlockMeta> blocks_;  // sorted by min_ts
  uint64_t next_id_ = 1;
  uint64_t next_block_id_ = 1;
  int64_t head_start_ = INT64_MIN;  // current head window start
  int64_t head_samples_bytes_ = 0;
  int64_t index_bytes_ = 0;
  uint64_t persisted_index_bytes_ = 0;
  uint64_t persisted_data_bytes_ = 0;
  uint64_t lsm_seq_ = 1;

  TsdbStats stats_;
};

}  // namespace tu::baseline
