// End-to-end layer for the Fig. 13 comparison: simulated Prometheus
// remote-write / HTTP query frontends over the storage engines.
//
//   CortexSim       — the paper's Cortex baseline: a tsdb-based storage
//                     engine behind an HTTP frontend PLUS the internal
//                     gRPC hop between distributor and ingester whose cost
//                     "accumulates with HTTP insertion requests" (§4.2).
//                     No fast path (§3.4), and long-range queries load
//                     whole block indexes from object storage.
//   TimeUnionRemote — TimeUnion behind the same HTTP frontend, in the three
//                     §4.2 modes: TU (slow path), TU-fast (reference path),
//                     TU-Group (group rows, fewer requests).
//
// RPC costs are charged to a simulated-time ledger (microseconds), so
// end-to-end throughput = samples / (measured CPU time + charged RPC time).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baseline/tsdb_engine.h"
#include "core/timeunion_db.h"
#include "tsbs/devops.h"

namespace tu::baseline {

/// Cost model of the HTTP/gRPC path, calibrated for shape (not absolute
/// numbers): a remote-write request costs http_request_us; Cortex adds
/// grpc_hop_us per internal hop and per_sample_grpc_ns per forwarded
/// sample.
struct RpcCosts {
  double http_request_us = 800.0;
  double grpc_hop_us = 400.0;
  /// Marshalling per sample on the HTTP path (protobuf decode).
  double per_sample_http_ns = 500.0;
  /// Marshalling per sample on Cortex's internal gRPC hop (re-encode +
  /// decode between distributor and ingester).
  double per_sample_grpc_ns = 2000.0;
};

struct RpcStats {
  uint64_t requests = 0;
  uint64_t samples = 0;
  double charged_us = 0;
};

/// One sample of a remote-write batch.
struct RemoteSample {
  index::Labels labels;
  int64_t ts = 0;
  double value = 0;
};

class CortexSim {
 public:
  CortexSim(TsdbOptions engine_options, RpcCosts costs);

  Status Open();

  /// Prometheus remote-write: one HTTP request carrying `batch`.
  Status RemoteWrite(const std::vector<RemoteSample>& batch);

  /// HTTP range query. Cortex's index reading is inefficient: it fetches
  /// the whole index object of every overlapping block before evaluating
  /// (§4.2: "it needs to load the whole index into memory in advance").
  Status QueryRange(const std::vector<index::TagMatcher>& matchers,
                    int64_t t0, int64_t t1,
                    std::vector<TsdbSeriesResult>* out);

  Status Flush() { return engine_->Flush(); }

  TsdbEngine& engine() { return *engine_; }
  const RpcStats& write_stats() const { return write_stats_; }
  const RpcStats& query_stats() const { return query_stats_; }

 private:
  TsdbOptions engine_options_;
  RpcCosts costs_;
  std::unique_ptr<TsdbEngine> engine_;
  RpcStats write_stats_;
  RpcStats query_stats_;
};

class TimeUnionRemote {
 public:
  enum class Mode { kSlowPath, kFastPath, kGroup };

  TimeUnionRemote(core::DBOptions db_options, RpcCosts costs, Mode mode);

  Status Open();

  /// Remote-write of a batch of individual samples (TU / TU-fast modes).
  Status RemoteWrite(const std::vector<RemoteSample>& batch);

  /// Fast-path remote-write: the client already holds series references
  /// (obtained via RegisterSeries / the first labelled insertion), so the
  /// payload carries IDs instead of tag sets (§3.4 second API).
  struct RefSample {
    uint64_t ref = 0;
    int64_t ts = 0;
    double value = 0;
  };
  Status RemoteWriteFast(const std::vector<RefSample>& batch);

  /// Resolves a fast-path reference (simulates the registration round).
  Status RegisterSeries(const index::Labels& labels, uint64_t* ref) {
    return db_->RegisterSeries(labels, ref);
  }

  /// Remote-write of group rows (TU-Group mode): one row per host per
  /// timestamp; timestamps deduplicated inside the request.
  struct GroupRow {
    index::Labels group_tags;
    std::vector<index::Labels> member_tags;  // needed on first sight only
    uint64_t group_key = 0;                  // caller-stable group handle
    int64_t ts = 0;
    std::vector<double> values;
  };
  Status RemoteWriteGroups(const std::vector<GroupRow>& batch);

  Status QueryRange(const std::vector<index::TagMatcher>& matchers,
                    int64_t t0, int64_t t1, core::QueryResult* out);

  Status Flush() { return db_->Flush(); }

  core::TimeUnionDB& db() { return *db_; }
  const RpcStats& write_stats() const { return write_stats_; }
  const RpcStats& query_stats() const { return query_stats_; }

 private:
  core::DBOptions db_options_;
  RpcCosts costs_;
  Mode mode_;
  std::unique_ptr<core::TimeUnionDB> db_;
  RpcStats write_stats_;
  RpcStats query_stats_;

  // Fast-path reference caches (client-side series refs / group slots).
  std::unordered_map<std::string, uint64_t> series_refs_;
  struct GroupRefs {
    uint64_t ref = 0;
    std::unordered_map<std::string, uint32_t> slots;
  };
  std::unordered_map<uint64_t, GroupRefs> group_refs_;
};

}  // namespace tu::baseline
