#include "baseline/cortex_sim.h"

namespace tu::baseline {

CortexSim::CortexSim(TsdbOptions engine_options, RpcCosts costs)
    : engine_options_(std::move(engine_options)), costs_(costs) {}

Status CortexSim::Open() { return TsdbEngine::Open(engine_options_, &engine_); }

Status CortexSim::RemoteWrite(const std::vector<RemoteSample>& batch) {
  // HTTP ingress + the distributor -> ingester gRPC hop: both per request,
  // plus per-sample marshalling on each hop.
  write_stats_.requests += 1;
  write_stats_.samples += batch.size();
  write_stats_.charged_us +=
      costs_.http_request_us + costs_.grpc_hop_us +
      batch.size() * (costs_.per_sample_http_ns + costs_.per_sample_grpc_ns) /
          1000.0;

  for (const RemoteSample& s : batch) {
    // Cortex has no fast path: every sample carries its full label set
    // through the write path (§3.4 / §4.2).
    uint64_t ref = 0;
    Status st = engine_->Insert(s.labels, s.ts, s.value, &ref);
    if (!st.ok() && !st.IsNotSupported()) return st;  // OOO drops, like tsdb
  }
  return Status::OK();
}

Status CortexSim::QueryRange(const std::vector<index::TagMatcher>& matchers,
                             int64_t t0, int64_t t1,
                             std::vector<TsdbSeriesResult>* out) {
  query_stats_.requests += 1;
  query_stats_.charged_us += costs_.http_request_us + costs_.grpc_hop_us;

  // Inefficient index reading: fetch every overlapping block's whole index
  // object from the slow tier before evaluating.
  std::vector<std::string> index_objects;
  TU_RETURN_IF_ERROR(
      engine_->env().slow().ListObjects("block_", &index_objects));
  for (const std::string& key : index_objects) {
    if (key.size() < 6 || key.substr(key.size() - 6) != ".index") continue;
    std::string blob;
    TU_RETURN_IF_ERROR(engine_->env().slow().GetObject(key, &blob));
  }
  return engine_->Query(matchers, t0, t1, out);
}

// ---------------------------------------------------------------------------

TimeUnionRemote::TimeUnionRemote(core::DBOptions db_options, RpcCosts costs,
                                 Mode mode)
    : db_options_(std::move(db_options)), costs_(costs), mode_(mode) {}

Status TimeUnionRemote::Open() {
  return core::TimeUnionDB::Open(db_options_, &db_);
}

Status TimeUnionRemote::RemoteWrite(const std::vector<RemoteSample>& batch) {
  write_stats_.requests += 1;
  write_stats_.samples += batch.size();
  write_stats_.charged_us +=
      costs_.http_request_us +
      batch.size() * costs_.per_sample_http_ns / 1000.0;

  for (const RemoteSample& s : batch) {
    if (mode_ == Mode::kSlowPath) {
      uint64_t ref = 0;
      TU_RETURN_IF_ERROR(db_->Insert(s.labels, s.ts, s.value, &ref));
      continue;
    }
    // Fast path: first insertion registers and caches the reference; the
    // following insertions go by reference (§3.4).
    index::Labels sorted = s.labels;
    index::SortLabels(&sorted);
    const std::string key = index::LabelsKey(sorted);
    auto it = series_refs_.find(key);
    if (it == series_refs_.end()) {
      uint64_t ref = 0;
      TU_RETURN_IF_ERROR(db_->Insert(sorted, s.ts, s.value, &ref));
      series_refs_[key] = ref;
    } else {
      TU_RETURN_IF_ERROR(db_->InsertFast(it->second, s.ts, s.value));
    }
  }
  return Status::OK();
}

Status TimeUnionRemote::RemoteWriteFast(const std::vector<RefSample>& batch) {
  write_stats_.requests += 1;
  write_stats_.samples += batch.size();
  // ID payloads are tiny: charge only a fraction of the per-sample
  // marshalling (no tag sets on the wire).
  write_stats_.charged_us +=
      costs_.http_request_us +
      batch.size() * costs_.per_sample_http_ns / 4000.0;
  for (const RefSample& s : batch) {
    TU_RETURN_IF_ERROR(db_->InsertFast(s.ref, s.ts, s.value));
  }
  return Status::OK();
}

Status TimeUnionRemote::RemoteWriteGroups(const std::vector<GroupRow>& batch) {
  write_stats_.requests += 1;
  uint64_t samples = 0;
  for (const GroupRow& row : batch) samples += row.values.size();
  write_stats_.samples += samples;
  // Grouping dedupes timestamps and labels inside the payload: the
  // marshalling term charges one entry per row, not per sample.
  write_stats_.charged_us +=
      costs_.http_request_us +
      batch.size() * costs_.per_sample_http_ns / 1000.0;

  for (const GroupRow& row : batch) {
    auto it = group_refs_.find(row.group_key);
    if (it == group_refs_.end()) {
      uint64_t gref = 0;
      std::vector<uint32_t> slots;
      TU_RETURN_IF_ERROR(db_->InsertGroup(row.group_tags, row.member_tags,
                                          row.ts, row.values, &gref, &slots));
      GroupRefs refs;
      refs.ref = gref;
      for (size_t i = 0; i < row.member_tags.size(); ++i) {
        index::Labels sorted = row.member_tags[i];
        index::SortLabels(&sorted);
        refs.slots[index::LabelsKey(sorted)] = slots[i];
      }
      group_refs_[row.group_key] = std::move(refs);
      continue;
    }
    // Fast path by group ref + member slots. A row without member tags
    // uses registration order (slots 0..n-1) — the §3.4 second group API,
    // where the client replays the slot indexes it was handed.
    std::vector<uint32_t> slots;
    slots.reserve(row.values.size());
    if (row.member_tags.empty()) {
      for (uint32_t i = 0; i < row.values.size(); ++i) slots.push_back(i);
      TU_RETURN_IF_ERROR(
          db_->InsertGroupFast(it->second.ref, slots, row.ts, row.values));
      continue;
    }
    bool all_known = row.member_tags.size() == row.values.size();
    if (all_known) {
      for (const index::Labels& tags : row.member_tags) {
        index::Labels sorted = tags;
        index::SortLabels(&sorted);
        auto slot_it = it->second.slots.find(index::LabelsKey(sorted));
        if (slot_it == it->second.slots.end()) {
          all_known = false;
          break;
        }
        slots.push_back(slot_it->second);
      }
    }
    if (all_known) {
      TU_RETURN_IF_ERROR(
          db_->InsertGroupFast(it->second.ref, slots, row.ts, row.values));
    } else {
      uint64_t gref = 0;
      std::vector<uint32_t> fresh_slots;
      TU_RETURN_IF_ERROR(db_->InsertGroup(row.group_tags, row.member_tags,
                                          row.ts, row.values, &gref,
                                          &fresh_slots));
      for (size_t i = 0; i < row.member_tags.size(); ++i) {
        index::Labels sorted = row.member_tags[i];
        index::SortLabels(&sorted);
        it->second.slots[index::LabelsKey(sorted)] = fresh_slots[i];
      }
    }
  }
  return Status::OK();
}

Status TimeUnionRemote::QueryRange(
    const std::vector<index::TagMatcher>& matchers, int64_t t0, int64_t t1,
    core::QueryResult* out) {
  query_stats_.requests += 1;
  query_stats_.charged_us += costs_.http_request_us;
  return db_->Query(matchers, t0, t1, out);
}

}  // namespace tu::baseline
