#include "baseline/tsdb_engine.h"

#include <algorithm>
#include <chrono>
#include <regex>
#include <set>
#include <string_view>

#include "lsm/key_format.h"
#include "util/coding.h"
#include "util/memory_tracker.h"
#include "util/mmap_file.h"

namespace tu::baseline {

namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Approximate per-node overhead of an unordered_map entry (buckets,
/// pointers, allocator headers) — the "much extra space to reduce the
/// collision rate" of §2.4.
constexpr int64_t kHashNodeOverhead = 64;

int64_t LabelsBytes(const index::Labels& labels) {
  int64_t bytes = 0;
  for (const auto& l : labels) {
    bytes += static_cast<int64_t>(l.name.size() + l.value.size()) + 32;
  }
  return bytes;
}

}  // namespace

TsdbEngine::TsdbEngine(TsdbOptions options) : options_(std::move(options)) {}

TsdbEngine::~TsdbEngine() {
  MemoryTracker::Global().Sub(MemCategory::kInvertedIndex, index_bytes_);
  MemoryTracker::Global().Sub(MemCategory::kSamples, head_samples_bytes_);
  for (auto& meta : blocks_) {
    MemoryTracker::Global().Sub(MemCategory::kBlockMeta, meta.tracked_bytes);
  }
}

Status TsdbEngine::Open(TsdbOptions options, std::unique_ptr<TsdbEngine>* out) {
  std::unique_ptr<TsdbEngine> engine(new TsdbEngine(std::move(options)));
  TU_RETURN_IF_ERROR(engine->Init());
  *out = std::move(engine);
  return Status::OK();
}

Status TsdbEngine::Init() {
  env_ = std::make_unique<cloud::TieredEnv>(options_.workspace,
                                            options_.env_options);
  segment_cache_ =
      std::make_unique<LRUCache<std::string>>(options_.segment_cache_bytes);
  if (options_.use_leveldb_samples) {
    lsm_cache_ = std::make_unique<lsm::BlockCache>(options_.segment_cache_bytes);
    sample_lsm_ = std::make_unique<lsm::LeveledLsm>(
        env_.get(), "samples_ldb", options_.leveled, lsm_cache_.get());
    TU_RETURN_IF_ERROR(sample_lsm_->Open());
  }
  return Status::OK();
}

void TsdbEngine::TrackIndexBytes(int64_t delta) {
  index_bytes_ += delta;
  MemoryTracker::Global().Add(MemCategory::kInvertedIndex, delta);
}

Status TsdbEngine::Register(const index::Labels& labels, uint64_t* ref) {
  index::Labels sorted = labels;
  index::SortLabels(&sorted);
  const std::string key = index::LabelsKey(sorted);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_by_key_.find(key);
  if (it != series_by_key_.end()) {
    *ref = it->second;
    return Status::OK();
  }
  const uint64_t id = next_id_++;
  HeadSeries series;
  series.id = id;
  series.labels = sorted;
  series_by_key_[key] = id;
  series_.emplace(id, std::move(series));
  *ref = id;

  // Build the nested hash index on the fly; account its real shape.
  int64_t delta = LabelsBytes(sorted) + kHashNodeOverhead;  // series entry
  for (const auto& l : sorted) {
    auto& by_value = head_index_[l.name];
    auto& postings = by_value[l.value];
    const size_t before = postings.capacity();
    index::PostingsInsert(&postings, id);
    delta += static_cast<int64_t>((postings.capacity() - before) *
                                  sizeof(uint64_t));
    delta += 2 * kHashNodeOverhead;  // nested nodes (name + value levels)
  }
  TrackIndexBytes(delta);
  return Status::OK();
}

Status TsdbEngine::Insert(const index::Labels& labels, int64_t ts, double value,
                          uint64_t* ref) {
  TU_RETURN_IF_ERROR(Register(labels, ref));
  return InsertFast(*ref, ts, value);
}

Status TsdbEngine::InsertFast(uint64_t ref, int64_t ts, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(ref);
  if (it == series_.end()) return Status::NotFound("unknown series");
  return AppendLocked(&it->second, ts, value);
}

Status TsdbEngine::AppendLocked(HeadSeries* series, int64_t ts, double value) {
  // Prometheus rejects out-of-order appends (§2.2).
  if (ts <= series->last_ts) {
    stats_.rejected_out_of_order.fetch_add(1, std::memory_order_relaxed);
    return Status::NotSupported("out-of-order sample");
  }
  if (head_start_ == INT64_MIN) {
    head_start_ = ts / options_.block_range_ms * options_.block_range_ms;
  }
  // Head window exceeded: cut the block first (all series flushed at once,
  // the §2.2 "data flushing can severely affect performance" event).
  if (ts >= head_start_ + options_.block_range_ms) {
    TU_RETURN_IF_ERROR(CutBlockLocked());
    head_start_ = ts / options_.block_range_ms * options_.block_range_ms;
  }

  series->buffer.push_back(compress::Sample{ts, value});
  series->last_ts = ts;
  head_samples_bytes_ += static_cast<int64_t>(sizeof(compress::Sample));
  MemoryTracker::Global().Add(MemCategory::kSamples,
                              sizeof(compress::Sample));
  if (series->buffer.size() >= options_.samples_per_chunk) {
    TU_RETURN_IF_ERROR(CloseOpenChunk(series));
  }
  return Status::OK();
}

Status TsdbEngine::CloseOpenChunk(HeadSeries* series) {
  if (series->buffer.empty()) return Status::OK();
  std::string payload;
  compress::EncodeSeriesChunk(0, series->buffer, &payload);
  const int64_t raw_bytes =
      static_cast<int64_t>(series->buffer.size() * sizeof(compress::Sample));
  // Compressed chunk stays in head memory until the block is cut.
  head_samples_bytes_ += static_cast<int64_t>(payload.size()) - raw_bytes;
  MemoryTracker::Global().Add(
      MemCategory::kSamples,
      static_cast<int64_t>(payload.size()) - raw_bytes);
  series->closed_start.push_back(series->buffer.front().timestamp);
  series->closed.push_back(std::move(payload));
  series->buffer.clear();
  return Status::OK();
}

std::string TsdbEngine::ChunksName(uint64_t block_id) const {
  return "block_" + std::to_string(block_id) + ".chunks";
}

Status TsdbEngine::WriteBlock(
    const std::vector<std::pair<uint64_t, std::vector<std::pair<int64_t, std::string>>>>&
        series_chunks,
    BlockMeta* meta) {
  meta->block_id = next_block_id_++;
  meta->min_ts = INT64_MAX;
  meta->max_ts = INT64_MIN;

  std::string chunk_blob;
  std::string index_blob;
  uint64_t ord = 0;
  for (const auto& [id, chunks] : series_chunks) {
    const HeadSeries& series = series_.at(id);
    meta->series_labels.push_back(series.labels);
    meta->series_ids.push_back(id);
    for (const auto& l : series.labels) {
      index::PostingsInsert(&meta->postings[l.Joined()], ord);
    }
    // Serialized index entry: labels + chunk refs.
    PutVarint64(&index_blob, id);
    PutVarint32(&index_blob, static_cast<uint32_t>(series.labels.size()));
    for (const auto& l : series.labels) {
      PutLengthPrefixedSlice(&index_blob, l.name);
      PutLengthPrefixedSlice(&index_blob, l.value);
    }
    PutVarint32(&index_blob, static_cast<uint32_t>(chunks.size()));

    for (const auto& [start_ts, payload] : chunks) {
      // Decode bounds for the chunk ref.
      uint64_t seq = 0;
      std::vector<compress::Sample> samples;
      TU_RETURN_IF_ERROR(
          compress::DecodeSeriesChunk(payload, &seq, &samples));
      ChunkRef ref;
      ref.series_ord = ord;
      ref.min_ts = samples.empty() ? start_ts : samples.front().timestamp;
      ref.max_ts = samples.empty() ? start_ts : samples.back().timestamp;
      ref.length = static_cast<uint32_t>(payload.size());
      meta->min_ts = std::min(meta->min_ts, ref.min_ts);
      meta->max_ts = std::max(meta->max_ts, ref.max_ts);
      if (options_.use_leveldb_samples) {
        // tsdb-LDB: chunk payloads go into the leveled LSM (same §3.3 key
        // format as TimeUnion).
        ref.offset = static_cast<uint64_t>(ref.min_ts);
        TU_RETURN_IF_ERROR(sample_lsm_->Put(
            lsm::MakeChunkKey(id, ref.min_ts),
            lsm::MakeChunkValue(lsm::ChunkType::kSeries, payload)));
      } else {
        ref.offset = chunk_blob.size();
        chunk_blob.append(payload);
      }
      PutVarint64(&index_blob, ref.offset);
      PutVarint32(&index_blob, ref.length);
      meta->chunks.push_back(ref);
    }
    ++ord;
  }
  if (meta->min_ts == INT64_MAX) {
    meta->min_ts = meta->max_ts = 0;
  }

  // Persist: chunk blob (unless in the LSM) + index blob.
  const std::string index_name =
      "block_" + std::to_string(meta->block_id) + ".index";
  if (!options_.use_leveldb_samples && !chunk_blob.empty()) {
    if (options_.blocks_on_slow) {
      TU_RETURN_IF_ERROR(env_->slow().PutObject(ChunksName(meta->block_id),
                                                chunk_blob));
    } else {
      TU_RETURN_IF_ERROR(env_->fast().WriteStringToFile(
          ChunksName(meta->block_id), chunk_blob));
    }
  }
  if (options_.blocks_on_slow) {
    TU_RETURN_IF_ERROR(env_->slow().PutObject(index_name, index_blob));
  } else {
    TU_RETURN_IF_ERROR(env_->fast().WriteStringToFile(index_name, index_blob));
  }
  meta->chunks_bytes = chunk_blob.size();
  meta->index_bytes = index_blob.size();
  persisted_index_bytes_ += index_blob.size();
  persisted_data_bytes_ += chunk_blob.size();
  stats_.bytes_written.fetch_add(chunk_blob.size() + index_blob.size(),
                                 std::memory_order_relaxed);
  TrackBlockMeta(meta);
  return Status::OK();
}

void TsdbEngine::TrackBlockMeta(BlockMeta* meta) {
  // Block metadata pinned in memory: symbols (deduplicated per block, as
  // in the Prometheus index format), per-series symbol references,
  // postings and chunk refs.
  int64_t bytes = 0;
  std::set<std::string_view> symbols;
  for (const auto& labels : meta->series_labels) {
    for (const auto& l : labels) {
      symbols.insert(l.name);
      symbols.insert(l.value);
      bytes += 16;  // two symbol references per tag pair
    }
  }
  for (std::string_view s : symbols) {
    bytes += static_cast<int64_t>(s.size()) + 24;
  }
  for (const auto& [key, postings] : meta->postings) {
    bytes += static_cast<int64_t>(key.size()) + kHashNodeOverhead +
             static_cast<int64_t>(postings.capacity() * sizeof(uint64_t));
  }
  bytes += static_cast<int64_t>(meta->chunks.size() * sizeof(ChunkRef));
  meta->tracked_bytes = bytes;
  MemoryTracker::Global().Add(MemCategory::kBlockMeta, bytes);
}

Status TsdbEngine::CutBlockLocked() {
  std::vector<std::pair<uint64_t, std::vector<std::pair<int64_t, std::string>>>>
      series_chunks;
  for (auto& [id, series] : series_) {
    TU_RETURN_IF_ERROR(CloseOpenChunk(&series));
    if (series.closed.empty()) continue;
    std::vector<std::pair<int64_t, std::string>> chunks;
    for (size_t i = 0; i < series.closed.size(); ++i) {
      chunks.emplace_back(series.closed_start[i], std::move(series.closed[i]));
    }
    // Head chunk memory released on flush.
    int64_t released = 0;
    for (const auto& [ts, payload] : chunks) {
      released += static_cast<int64_t>(payload.size());
    }
    head_samples_bytes_ -= released;
    MemoryTracker::Global().Sub(MemCategory::kSamples, released);
    series.closed.clear();
    series.closed_start.clear();
    series_chunks.emplace_back(id, std::move(chunks));
  }
  if (series_chunks.empty()) return Status::OK();
  std::sort(series_chunks.begin(), series_chunks.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  BlockMeta meta;
  TU_RETURN_IF_ERROR(WriteBlock(series_chunks, &meta));
  blocks_.push_back(std::move(meta));
  stats_.blocks_cut.fetch_add(1, std::memory_order_relaxed);
  return MaybeCompactLocked();
}

Status TsdbEngine::MaybeCompactLocked() {
  // Merge runs of `compact_block_count` uncompacted adjacent blocks.
  if (options_.compact_block_count < 2) return Status::OK();
  while (blocks_.size() >= static_cast<size_t>(2 * options_.compact_block_count)) {
    TU_RETURN_IF_ERROR(
        CompactBlocksLocked(0, options_.compact_block_count));
  }
  return Status::OK();
}

Status TsdbEngine::CompactBlocksLocked(size_t first, size_t count) {
  const uint64_t start_us = NowUs();

  // Gather per-series chunks across the input blocks (read = Get traffic).
  std::map<uint64_t, std::vector<std::pair<int64_t, std::string>>> merged;
  for (size_t b = first; b < first + count; ++b) {
    BlockMeta& meta = blocks_[b];
    for (const ChunkRef& ref : meta.chunks) {
      std::string payload;
      TU_RETURN_IF_ERROR(ReadChunk(meta, ref, &payload));
      merged[meta.series_ids[ref.series_ord]].emplace_back(ref.min_ts,
                                                           std::move(payload));
    }
  }

  std::vector<std::pair<uint64_t, std::vector<std::pair<int64_t, std::string>>>>
      series_chunks;
  for (auto& [id, chunks] : merged) {
    std::sort(chunks.begin(), chunks.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    series_chunks.emplace_back(id, std::move(chunks));
  }

  BlockMeta meta;
  TU_RETURN_IF_ERROR(WriteBlock(series_chunks, &meta));

  // Delete the inputs.
  for (size_t b = first; b < first + count; ++b) {
    BlockMeta& old = blocks_[b];
    MemoryTracker::Global().Sub(MemCategory::kBlockMeta, old.tracked_bytes);
    const std::string index_name =
        "block_" + std::to_string(old.block_id) + ".index";
    if (options_.blocks_on_slow) {
      env_->slow().DeleteObject(ChunksName(old.block_id));
      env_->slow().DeleteObject(index_name);
    } else {
      env_->fast().DeleteFile(ChunksName(old.block_id));
      env_->fast().DeleteFile(index_name);
    }
  }
  blocks_.erase(blocks_.begin() + first, blocks_.begin() + first + count);
  blocks_.insert(blocks_.begin() + first, std::move(meta));

  stats_.compactions.fetch_add(1, std::memory_order_relaxed);
  stats_.compaction_us.fetch_add(NowUs() - start_us,
                                 std::memory_order_relaxed);
  return Status::OK();
}

Status TsdbEngine::ReadChunk(const BlockMeta& meta, const ChunkRef& ref,
                             std::string* out) {
  if (options_.use_leveldb_samples) {
    // Locate the chunk in the sample LSM by (series id, start ts).
    const uint64_t id = meta.series_ids[ref.series_ord];
    std::unique_ptr<lsm::Iterator> it;
    TU_RETURN_IF_ERROR(sample_lsm_->NewIteratorForId(
        id, static_cast<int64_t>(ref.offset), ref.max_ts, &it));
    const std::string target =
        lsm::MakeChunkKey(id, static_cast<int64_t>(ref.offset));
    for (it->Seek(target); it->Valid(); it->Next()) {
      const Slice user_key = lsm::InternalKeyUserKey(it->key());
      if (lsm::ChunkKeyId(user_key) != id) break;
      if (lsm::ChunkKeyTimestamp(user_key) !=
          static_cast<int64_t>(ref.offset)) {
        break;
      }
      *out = lsm::ChunkValuePayload(it->value()).ToString();
      return Status::OK();
    }
    return Status::NotFound("chunk not in sample lsm");
  }

  const std::string cache_key = "b" + std::to_string(meta.block_id) + ":" +
                                std::to_string(ref.offset);
  if (auto cached = segment_cache_->Lookup(cache_key)) {
    *out = *cached;
    return Status::OK();
  }
  if (options_.blocks_on_slow) {
    TU_RETURN_IF_ERROR(env_->slow().GetRange(ChunksName(meta.block_id),
                                             ref.offset, ref.length, out));
  } else {
    std::unique_ptr<cloud::RandomAccessFile> file;
    TU_RETURN_IF_ERROR(
        env_->fast().NewRandomAccessFile(ChunksName(meta.block_id), &file));
    Slice result;
    TU_RETURN_IF_ERROR(file->Read(ref.offset, ref.length, &result, out));
    out->resize(result.size());
  }
  segment_cache_->Insert(cache_key, std::make_shared<std::string>(*out),
                         out->size());
  return Status::OK();
}

Status TsdbEngine::Query(const std::vector<index::TagMatcher>& matchers,
                         int64_t t0, int64_t t1,
                         std::vector<TsdbSeriesResult>* out) {
  out->clear();
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, TsdbSeriesResult> results;  // by labels key

  auto matches = [&](const index::Labels& labels) {
    for (const auto& m : matchers) {
      bool found = false;
      for (const auto& l : labels) {
        if (l.name != m.name) continue;
        if (m.type == index::TagMatcher::Type::kEqual) {
          found = (l.value == m.value);
        } else {
          try {
            found = std::regex_match(l.value, std::regex(m.value));
          } catch (const std::regex_error&) {
            found = false;
          }
        }
        break;
      }
      if (!found) return false;
    }
    return true;
  };

  // Head: resolve via the nested hash index for the first equality
  // matcher, then verify the rest.
  {
    std::vector<uint64_t> candidates;
    bool narrowed = false;
    for (const auto& m : matchers) {
      if (m.type != index::TagMatcher::Type::kEqual) continue;
      auto by_value = head_index_.find(m.name);
      if (by_value == head_index_.end()) break;
      auto postings = by_value->second.find(m.value);
      if (postings == by_value->second.end()) {
        candidates.clear();
        narrowed = true;
        break;
      }
      candidates = postings->second;
      narrowed = true;
      break;
    }
    if (!narrowed) {
      for (const auto& [id, series] : series_) candidates.push_back(id);
    }
    for (uint64_t id : candidates) {
      const HeadSeries& series = series_.at(id);
      if (!matches(series.labels)) continue;
      TsdbSeriesResult result;
      result.labels = series.labels;
      for (const auto& payload : series.closed) {
        uint64_t seq = 0;
        std::vector<compress::Sample> samples;
        TU_RETURN_IF_ERROR(
            compress::DecodeSeriesChunk(payload, &seq, &samples));
        for (const auto& s : samples) {
          if (s.timestamp >= t0 && s.timestamp <= t1) {
            result.samples.push_back(s);
          }
        }
      }
      for (const auto& s : series.buffer) {
        if (s.timestamp >= t0 && s.timestamp <= t1) result.samples.push_back(s);
      }
      if (!result.samples.empty()) {
        results[index::LabelsKey(series.labels)] = std::move(result);
      }
    }
  }

  // Persistent blocks. Block metadata must be resident to evaluate the
  // query: if it fell out of the segment cache, the whole index object is
  // fetched again from storage (the §4.3 long-range penalty: "tsdb needs
  // to fetch those large indexes in old time-partitions from S3").
  for (BlockMeta& meta : blocks_) {
    if (meta.min_ts > t1 || meta.max_ts < t0) continue;
    const std::string idx_key = "idx:" + std::to_string(meta.block_id);
    if (!segment_cache_->Lookup(idx_key)) {
      const std::string index_name =
          "block_" + std::to_string(meta.block_id) + ".index";
      std::string blob;
      if (options_.blocks_on_slow) {
        TU_RETURN_IF_ERROR(env_->slow().GetObject(index_name, &blob));
      } else {
        TU_RETURN_IF_ERROR(env_->fast().ReadFileToString(index_name, &blob));
      }
      segment_cache_->Insert(idx_key, std::make_shared<std::string>(),
                             blob.size());
    }
    // Narrow by the first equality matcher through the block postings.
    std::vector<uint64_t> ords;
    bool narrowed = false;
    for (const auto& m : matchers) {
      if (m.type != index::TagMatcher::Type::kEqual) continue;
      auto it = meta.postings.find(m.name + index::kTagDelim + m.value);
      if (it == meta.postings.end()) {
        ords.clear();
      } else {
        ords = it->second;
      }
      narrowed = true;
      break;
    }
    if (!narrowed) {
      ords.resize(meta.series_labels.size());
      for (size_t i = 0; i < ords.size(); ++i) ords[i] = i;
    }
    for (uint64_t ord : ords) {
      const index::Labels& labels = meta.series_labels[ord];
      if (!matches(labels)) continue;
      const std::string key = index::LabelsKey(labels);
      TsdbSeriesResult& result = results[key];
      if (result.labels.empty()) result.labels = labels;
      for (const ChunkRef& ref : meta.chunks) {
        if (ref.series_ord != ord || ref.min_ts > t1 || ref.max_ts < t0) {
          continue;
        }
        std::string payload;
        TU_RETURN_IF_ERROR(ReadChunk(meta, ref, &payload));
        uint64_t seq = 0;
        std::vector<compress::Sample> samples;
        TU_RETURN_IF_ERROR(
            compress::DecodeSeriesChunk(payload, &seq, &samples));
        for (const auto& s : samples) {
          if (s.timestamp >= t0 && s.timestamp <= t1) {
            result.samples.push_back(s);
          }
        }
      }
      if (result.samples.empty()) results.erase(key);
    }
  }

  for (auto& [key, result] : results) {
    std::sort(result.samples.begin(), result.samples.end(),
              [](const compress::Sample& a, const compress::Sample& b) {
                return a.timestamp < b.timestamp;
              });
    out->push_back(std::move(result));
  }
  return Status::OK();
}

Status TsdbEngine::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  TU_RETURN_IF_ERROR(CutBlockLocked());
  if (sample_lsm_) {
    TU_RETURN_IF_ERROR(sample_lsm_->FlushAll());
  }
  return Status::OK();
}

}  // namespace tu::baseline
